package chaos

import (
	"testing"
	"time"

	"tboost/internal/lockmgr"
)

// TestAdaptiveStormPolicies fires granularity migrations into the middle of
// the deadlock storm under each contention policy. Strict serializability and
// the Theorem 5.4 audit must hold under all three; progress assertions mirror
// TestDeadlockStormPolicies (timeout is the shed-tolerant baseline). The
// migration driver must complete at least one full promote+demote round —
// a storm that never migrated proved nothing.
func TestAdaptiveStormPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy lockmgr.ContentionPolicy
	}{
		{"timeout", lockmgr.Timeout},
		{"wound-wait", lockmgr.WoundWait},
		{"detect", lockmgr.NewDetect()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep := RunAdaptiveStorm(StormConfig{}, tc.policy)
			t.Logf("%s", rep)
			if rep.Err != nil {
				t.Fatalf("adaptive storm under %s violated serializability: %v", tc.name, rep.Err)
			}
			if rep.Promotions < 1 || rep.Demotions < 1 {
				t.Fatalf("storm migrated promote=%d demote=%d times; need at least one full round", rep.Promotions, rep.Demotions)
			}
			if tc.name == "timeout" {
				return // baseline: liveness comes only from timeouts; no progress assertions
			}
			if rep.Shed != 0 {
				t.Errorf("%d transactions gave up under %s; every transaction must commit", rep.Shed, tc.name)
			}
			if rep.Stats.Collapses != 0 {
				t.Errorf("ErrContentionCollapse fired %d times under %s, want 0", rep.Stats.Collapses, tc.name)
			}
			if rep.Stats.Commits != rep.Expected {
				t.Errorf("commits = %d, want %d under %s", rep.Stats.Commits, rep.Expected, tc.name)
			}
			if limit := 30 * time.Second; rep.MaxLatency > limit {
				t.Errorf("max transaction latency %v exceeds %v under %s", rep.MaxLatency, limit, tc.name)
			}
			if tc.name == "detect" {
				if n := lockmgr.DetectWaiting(tc.policy); n != 0 {
					t.Errorf("wait-for graph holds %d edges after the storm, want 0", n)
				}
			}
		})
	}
}
