package chaos

// Crash-chaos: kill the durability engine at its worst moments and demand
// that recovery honors the acknowledgment contract. The harness drives two
// durable boosted sets through a concurrent workload while a faultpoint
// Crash freezes the WAL at a named site (mid-batch torn write, pre-fsync
// loss, post-fsync-pre-ack, mid-checkpoint, mid-truncate), then audits the
// surviving directory and a full recovery against what the workload actually
// observed:
//
//	ack    — every transaction whose Atomic call returned nil (acknowledged
//	         durable) survives: it is covered by the authoritative
//	         checkpoint or present in the surviving records;
//	phantom— every surviving record belongs to a transaction that committed
//	         in memory, and its ops are exactly that transaction's effective
//	         forward calls (no partial transactions, no inventions);
//	state  — the durable transaction subset is strictly serializable against
//	         the sequential spec, and replaying exactly that subset
//	         reproduces the recovered base state key for key.
//
// Transactions that committed in memory but were never acknowledged
// (ErrNotDurable) may appear whole or not at all — both are legal; partial
// appearance is not.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/histories"
	"tboost/internal/stm"
	"tboost/internal/wal"
)

// CrashSites lists the five kill points the crash matrix covers.
func CrashSites() []string {
	return []string{
		faultpoint.WalMidBatch,
		faultpoint.WalPreFsync,
		faultpoint.WalPostFsync,
		faultpoint.WalMidCheckpoint,
		faultpoint.WalMidTruncate,
	}
}

// CrashConfig sizes one crash-chaos run.
type CrashConfig struct {
	Site        string        // faultpoint to kill at (required)
	Dir         string        // WAL directory (required; caller owns cleanup)
	Goroutines  int           // concurrent workers in the crash phase (default 4)
	TxPerG      int           // transactions per worker per phase (default 50)
	OpsPerTx    int           // calls per transaction (default 3)
	KeyRange    int           // keys per set (default 16)
	Seed        uint64        // workload RNG seed (default 1)
	GroupWindow time.Duration // WAL group-commit window (default 2ms, to form batches)
	ArtifactDir string        // where to drop a divergence report (default $CRASH_ARTIFACT_DIR)
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.Goroutines <= 0 {
		c.Goroutines = 4
	}
	if c.TxPerG <= 0 {
		c.TxPerG = 50
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 3
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.GroupWindow <= 0 {
		c.GroupWindow = 2 * time.Millisecond
	}
	if c.ArtifactDir == "" {
		c.ArtifactDir = os.Getenv("CRASH_ARTIFACT_DIR")
	}
	return c
}

// CrashReport is the outcome of one crash-chaos run.
type CrashReport struct {
	Site         string
	Crashed      bool   // the faultpoint actually fired
	Acked        int    // transactions acknowledged durable
	Unacked      int    // committed in memory, never acknowledged
	Records      int    // records surviving in the directory
	Stale        int    // records skipped as checkpoint-covered
	Checkpoint   uint64 // authoritative checkpoint's covered-LSN bound (0 = none)
	TornRecovery bool   // recovery truncated a torn tail
	Err          error  // nil iff every check passed
}

func (r CrashReport) String() string {
	verdict := "recovered consistent"
	if r.Err != nil {
		verdict = r.Err.Error()
	}
	return fmt.Sprintf("%-22s crashed=%-5v acked=%-4d unacked=%-3d records=%-4d stale=%-3d ckpt=%-4d torn=%-5v %s",
		r.Site, r.Crashed, r.Acked, r.Unacked, r.Records, r.Stale, r.Checkpoint, r.TornRecovery, verdict)
}

// fwdOp is the harness's own record of one effective forward call, kept to
// cross-examine the log's records.
type fwdOp struct {
	obj  string
	kind uint8
	key  int64
}

// txLedger tracks, per committed transaction, what the workload knows the
// log should know.
type txLedger struct {
	mu      sync.Mutex
	eff     map[uint64][]fwdOp // effective ops of memory-committed txs
	acked   map[uint64]bool
	unacked map[uint64]bool // committed in memory, barrier failed
}

func newLedger() *txLedger {
	return &txLedger{eff: map[uint64][]fwdOp{}, acked: map[uint64]bool{}, unacked: map[uint64]bool{}}
}

func (t *txLedger) committed(id uint64, ops []fwdOp) {
	t.mu.Lock()
	t.eff[id] = ops
	t.mu.Unlock()
}

func (t *txLedger) ack(id uint64, durable bool) {
	t.mu.Lock()
	if durable {
		t.acked[id] = true
	} else {
		t.unacked[id] = true
	}
	t.mu.Unlock()
}

// snapshotCommitted returns the IDs committed in memory so far — taken at
// quiescent points to mark what a checkpoint covers.
func (t *txLedger) snapshotCommitted() map[uint64]bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint64]bool, len(t.eff))
	for id := range t.eff {
		out[id] = true
	}
	return out
}

// ckAttempt remembers a Checkpoint call: the covered-LSN bound it returned
// (0 if it crashed before reporting) and which transactions were committed
// when it started. The run is quiescent around every checkpoint, so the
// snapshot is exact.
type ckAttempt struct {
	lsn     uint64
	covered map[uint64]bool
}

// RunCrash executes one crash-chaos run: build state, checkpoint, crash at
// cfg.Site, then audit the directory and a full recovery.
func RunCrash(cfg CrashConfig) CrashReport {
	cfg = cfg.withDefaults()
	rep := CrashReport{Site: cfg.Site}
	if cfg.Dir == "" {
		rep.Err = errors.New("crash: CrashConfig.Dir is required")
		return rep
	}
	Disarm()
	defer Disarm()

	opts := wal.Options{
		Mode:         wal.Group,
		GroupWindow:  cfg.GroupWindow,
		SegmentBytes: 512, // rotate often so checkpoints have segments to prune
		Dir:          cfg.Dir,
	}
	log, err := wal.Open(opts)
	if err != nil {
		rep.Err = err
		return rep
	}
	alpha := core.NewHashSetOf[int64]()
	beta := core.NewHashSetOf[int64]()
	if err := core.BindSet(log, "alpha", wal.Int64Codec, alpha); err != nil {
		rep.Err = err
		return rep
	}
	if err := core.BindSet(log, "beta", wal.Int64Codec, beta); err != nil {
		rep.Err = err
		return rep
	}
	if _, err := log.Recover(); err != nil {
		rep.Err = err
		return rep
	}
	sys := stm.NewSystem(stm.Config{
		Durability:  log,
		LockTimeout: 25 * time.Millisecond,
		MaxRetries:  50,
	})
	sets := map[string]*core.Set[int64]{"alpha": alpha, "beta": beta}

	rec := histories.NewRecorder()
	led := newLedger()
	var attempts []ckAttempt

	checkpoint := func() error {
		covered := led.snapshotCommitted()
		lsn, err := log.Checkpoint()
		attempts = append(attempts, ckAttempt{lsn: lsn, covered: covered})
		return err
	}

	// Phase A: base state, no faults, then a clean checkpoint — so every
	// run exercises checkpoint-load + record-replay recovery, not just
	// record replay.
	if err := runCrashWorkers(cfg, 0, sys, sets, rec, led); err != nil {
		rep.Err = fmt.Errorf("crash: phase A: %w", err)
		return rep
	}
	if sys.ActiveTx() != 0 {
		rep.Err = errors.New("crash: phase A not quiescent")
		return rep
	}
	if err := checkpoint(); err != nil {
		rep.Err = fmt.Errorf("crash: phase A checkpoint: %w", err)
		return rep
	}

	// Phase B: more traffic on top of the checkpoint.
	if err := runCrashWorkers(cfg, 1, sys, sets, rec, led); err != nil {
		rep.Err = fmt.Errorf("crash: phase B: %w", err)
		return rep
	}

	// Phase C: the kill. Checkpoint sites crash inside an explicit
	// Checkpoint call at a quiescent point; writer sites crash under
	// concurrent load.
	switch cfg.Site {
	case faultpoint.WalMidCheckpoint, faultpoint.WalMidTruncate:
		faultpoint.Enable(cfg.Site, faultpoint.Trigger{Effect: faultpoint.Crash, OneShot: true})
		err := checkpoint()
		faultpoint.Disable(cfg.Site)
		if !errors.Is(err, wal.ErrCrashed) {
			rep.Err = fmt.Errorf("crash: checkpoint at %s returned %v, want ErrCrashed", cfg.Site, err)
			return rep
		}
	default:
		// EveryN lets a few batches through before the kill so the crash
		// lands mid-workload, not on the first record.
		faultpoint.Enable(cfg.Site, faultpoint.Trigger{Effect: faultpoint.Crash, OneShot: true, EveryN: 3})
		err := runCrashWorkers(cfg, 2, sys, sets, rec, led)
		faultpoint.Disable(cfg.Site)
		if err != nil {
			rep.Err = fmt.Errorf("crash: phase C: %w", err)
			return rep
		}
	}
	rep.Crashed = log.Crashed()
	if !rep.Crashed {
		rep.Err = fmt.Errorf("crash: site %s never fired", cfg.Site)
		return rep
	}
	log.Close()

	led.mu.Lock()
	rep.Acked, rep.Unacked = len(led.acked), len(led.unacked)
	led.mu.Unlock()

	verifyCrash(cfg, &rep, rec.History(), led, attempts)
	if rep.Err != nil {
		writeCrashArtifact(cfg, rep, led)
	}
	return rep
}

// runCrashWorkers drives one phase of the workload. Phase 0 is sequential
// (deterministic base state); later phases run cfg.Goroutines workers.
// Workers stop quietly once the log has crashed (ErrNotDurable).
func runCrashWorkers(cfg CrashConfig, phase int, sys *stm.System, sets map[string]*core.Set[int64], rec *histories.Recorder, led *txLedger) error {
	workers := cfg.Goroutines
	if phase == 0 {
		workers = 1
	}
	names := []string{"alpha", "beta"}
	giveUp := errors.New("crash: deliberate user abort")
	var fatal errOnce
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed+uint64(phase)*97, uint64(g)))
			for i := 0; i < cfg.TxPerG; i++ {
				fail := phase > 0 && r.IntN(6) == 0
				type callPlan struct {
					op   int
					name string
					key  int64
				}
				plan := make([]callPlan, cfg.OpsPerTx)
				for j := range plan {
					plan[j] = callPlan{
						op:   r.IntN(3),
						name: names[r.IntN(2)],
						key:  int64(r.IntN(cfg.KeyRange)),
					}
				}
				var id uint64
				err := sys.Atomic(func(tx *stm.Tx) error {
					id = tx.ID()
					var eff []fwdOp
					for _, p := range plan {
						set := sets[p.name]
						switch p.op {
						case 0:
							ok := set.Add(tx, p.key)
							rec.RecordCall(id, p.name, "add", []int64{p.key}, histories.Resp{OK: ok})
							if ok {
								eff = append(eff, fwdOp{p.name, core.RedoAdd, p.key})
							}
						case 1:
							ok := set.Remove(tx, p.key)
							rec.RecordCall(id, p.name, "remove", []int64{p.key}, histories.Resp{OK: ok})
							if ok {
								eff = append(eff, fwdOp{p.name, core.RedoRemove, p.key})
							}
						default:
							ok := set.Contains(tx, p.key)
							rec.RecordCall(id, p.name, "contains", []int64{p.key}, histories.Resp{OK: ok})
						}
					}
					if fail {
						return giveUp
					}
					tx.AtCommit(func() {
						rec.Commit(id)
						led.committed(id, eff)
					})
					return nil
				})
				switch {
				case err == nil:
					led.ack(id, true)
				case errors.Is(err, stm.ErrNotDurable):
					led.ack(id, false)
					return // the log is dead; nothing more to do
				case errors.Is(err, giveUp):
				case shedable(err):
				default:
					fatal.set(fmt.Errorf("worker %d: %w", g, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	return fatal.get()
}

// verifyCrash audits the post-crash directory and a full recovery.
func verifyCrash(cfg CrashConfig, rep *CrashReport, hist histories.History, led *txLedger, attempts []ckAttempt) {
	dump, err := wal.DumpDir(cfg.Dir)
	if err != nil {
		rep.Err = fmt.Errorf("crash: dump: %w", err)
		return
	}
	rep.Records = len(dump.Records)
	rep.Stale = dump.Stale

	// Which checkpoint is authoritative, and which transactions does it
	// cover? Match the surviving checkpoint's LSN bound to the attempt that
	// produced it (a mid-truncate crash publishes the checkpoint even
	// though the call reported ErrCrashed).
	ckCovered := map[uint64]bool{}
	if dump.Checkpoint != nil {
		rep.Checkpoint = dump.Checkpoint.NextLSN
		found := false
		for _, a := range attempts {
			if a.lsn == dump.Checkpoint.NextLSN {
				ckCovered = a.covered
				found = true
			}
		}
		if !found {
			// The crashed attempt (lsn reported as 0) must be the publisher.
			last := attempts[len(attempts)-1]
			if last.lsn != 0 {
				rep.Err = fmt.Errorf("crash: surviving checkpoint LSN %d matches no attempt", dump.Checkpoint.NextLSN)
				return
			}
			ckCovered = last.covered
		}
	}

	led.mu.Lock()
	defer led.mu.Unlock()

	// Phantom check: every surviving record is a whole memory-committed
	// transaction, op for op.
	names := []string{"alpha", "beta"}
	dumpTx := map[uint64]bool{}
	for _, r := range dump.Records {
		if dumpTx[r.TxID] {
			rep.Err = fmt.Errorf("crash: tx %d appears in two records", r.TxID)
			return
		}
		dumpTx[r.TxID] = true
		eff, ok := led.eff[r.TxID]
		if !ok {
			rep.Err = fmt.Errorf("crash: phantom record for tx %d (never committed in memory)", r.TxID)
			return
		}
		if len(r.Ops) != len(eff) {
			rep.Err = fmt.Errorf("crash: tx %d record has %d ops, workload performed %d (partial tx?)", r.TxID, len(r.Ops), len(eff))
			return
		}
		for i, op := range r.Ops {
			if int(op.Obj) >= len(names) {
				rep.Err = fmt.Errorf("crash: tx %d op %d names unknown object %d", r.TxID, i, op.Obj)
				return
			}
			key, n, derr := wal.Int64Codec.Decode(op.Data)
			if derr != nil || n != len(op.Data) {
				rep.Err = fmt.Errorf("crash: tx %d op %d key undecodable: %v", r.TxID, i, derr)
				return
			}
			want := eff[i]
			if names[op.Obj] != want.obj || op.Kind != want.kind || key != want.key {
				rep.Err = fmt.Errorf("crash: tx %d op %d is %s/%d/%d, workload performed %s/%d/%d",
					r.TxID, i, names[op.Obj], op.Kind, key, want.obj, want.kind, want.key)
				return
			}
		}
	}

	// Ack check: everything acknowledged durable must survive — via the
	// checkpoint or via a record. (The converse is free: unacked durable
	// transactions are allowed, that is exactly the post-fsync-pre-ack
	// case.) Acked transactions with no effective forward ops never reach
	// the log; they have nothing to lose.
	for id := range led.acked {
		if len(led.eff[id]) == 0 {
			continue
		}
		if !ckCovered[id] && !dumpTx[id] {
			rep.Err = fmt.Errorf("crash: ACKED tx %d lost (not in checkpoint coverage or records)", id)
			return
		}
	}

	// State check: recover for real, then demand (a) the durable subset of
	// the recorded history is strictly serializable and (b) replaying
	// exactly that subset reproduces the recovered base state.
	log2, err := wal.Open(wal.Options{Mode: wal.Group, Dir: cfg.Dir})
	if err != nil {
		rep.Err = err
		return
	}
	defer log2.Close()
	alpha2 := core.NewHashSetOf[int64]()
	beta2 := core.NewHashSetOf[int64]()
	if err := core.BindSet(log2, "alpha", wal.Int64Codec, alpha2); err != nil {
		rep.Err = err
		return
	}
	if err := core.BindSet(log2, "beta", wal.Int64Codec, beta2); err != nil {
		rep.Err = err
		return
	}
	res, err := log2.Recover()
	if err != nil {
		rep.Err = fmt.Errorf("crash: recovery failed: %w", err)
		return
	}
	rep.TornRecovery = res.TornBytes > 0

	durable := func(id uint64) bool { return ckCovered[id] || dumpTx[id] }
	var filtered histories.History
	for _, e := range hist {
		if durable(e.Tx) {
			filtered = append(filtered, e)
		}
	}
	specs := map[string]histories.Spec{"alpha": histories.SetSpec{}, "beta": histories.SetSpec{}}
	finals, err := histories.FinalStates(filtered, specs)
	if err != nil {
		rep.Err = fmt.Errorf("crash: durable subset not serializable: %w", err)
		return
	}
	recovered := map[string]*core.Set[int64]{"alpha": alpha2, "beta": beta2}
	for _, name := range names {
		for k := int64(0); k < int64(cfg.KeyRange); k++ {
			want, _, _ := finals[name].Apply("contains", []int64{k})
			if got := recovered[name].Base().Contains(k); got != want.OK {
				rep.Err = fmt.Errorf("crash: recovered %s diverges at key %d: base=%v, durable history=%v",
					name, k, got, want.OK)
				return
			}
		}
	}
}

// writeCrashArtifact drops a human-readable divergence report for CI to
// upload. Best-effort: artifact failures never mask the verdict.
func writeCrashArtifact(cfg CrashConfig, rep CrashReport, led *txLedger) {
	if cfg.ArtifactDir == "" {
		return
	}
	if err := os.MkdirAll(cfg.ArtifactDir, 0o755); err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "site: %s\nverdict: %v\n%s\n\n", cfg.Site, rep.Err, rep.String())
	dump, err := wal.DumpDir(cfg.Dir)
	if err == nil {
		if dump.Checkpoint != nil {
			fmt.Fprintf(&b, "checkpoint nextLSN=%d sections=%d\n", dump.Checkpoint.NextLSN, len(dump.Checkpoint.Sections))
		}
		for _, r := range dump.Records {
			fmt.Fprintf(&b, "record lsn=%d tx=%d ops=%d\n", r.LSN, r.TxID, len(r.Ops))
		}
	}
	led.mu.Lock()
	fmt.Fprintf(&b, "\nacked=%d unacked=%d committedInMem=%d\n", len(led.acked), len(led.unacked), len(led.eff))
	led.mu.Unlock()
	name := "crash-" + strings.ReplaceAll(cfg.Site, "/", "-") + ".txt"
	os.WriteFile(filepath.Join(cfg.ArtifactDir, name), []byte(b.String()), 0o644)
}
