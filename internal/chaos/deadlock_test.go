package chaos

import (
	"testing"
	"time"

	"tboost/internal/lockmgr"
)

// TestDeadlockStormPolicies runs the deadlock storm under each contention
// policy. Serializability must hold under all three; the progress guarantees
// differ and are asserted per policy:
//
//   - timeout: the paper's discipline. Deadlocks resolve only by waiting out
//     the lock budget, so aborts are plentiful and collapse is a tolerated
//     outcome — this run is the baseline the richer policies beat.
//   - wound-wait and detect: every submitted transaction must commit, with
//     zero contention collapses and a bounded worst-case latency.
func TestDeadlockStormPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy lockmgr.ContentionPolicy
	}{
		{"timeout", lockmgr.Timeout},
		{"wound-wait", lockmgr.WoundWait},
		{"detect", lockmgr.NewDetect()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep := RunStorm(StormConfig{}, tc.policy)
			t.Logf("%s", rep)
			if rep.Err != nil {
				t.Fatalf("storm under %s violated serializability: %v", tc.name, rep.Err)
			}
			if tc.name == "timeout" {
				return // baseline: liveness comes only from timeouts; no progress assertions
			}
			if rep.Shed != 0 {
				t.Errorf("%d transactions gave up under %s; every transaction must commit", rep.Shed, tc.name)
			}
			if rep.Stats.Collapses != 0 {
				t.Errorf("ErrContentionCollapse fired %d times under %s, want 0", rep.Stats.Collapses, tc.name)
			}
			if rep.Stats.Commits != rep.Expected {
				t.Errorf("commits = %d, want %d under %s", rep.Stats.Commits, rep.Expected, tc.name)
			}
			// The starvation bound: even the unluckiest transaction (which is
			// eventually the oldest live one, and thereafter unkillable under
			// wound-wait) finishes in a small multiple of the lock budget,
			// nowhere near the collapse horizon.
			if limit := 10 * time.Second; rep.MaxLatency > limit {
				t.Errorf("max transaction latency %v exceeds %v under %s", rep.MaxLatency, limit, tc.name)
			}
			if tc.name == "detect" {
				if n := lockmgr.DetectWaiting(tc.policy); n != 0 {
					t.Errorf("wait-for graph holds %d edges after the storm, want 0", n)
				}
			}
		})
	}
}
