package chaos

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/histories"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// StormConfig sizes a deadlock storm: a workload built to deadlock, not
// merely to contend. Workers acquire keyed locks (boosted skip-list set) and
// interval locks (boosted ordered set) in parity-reversed orders, so ABBA
// cycles form constantly — within the key space, within the interval table,
// and across the two structures. The defaults suit a 1-CPU race-detector run.
type StormConfig struct {
	Goroutines    int           // workers (default 6; half run each order)
	TxPerG        int           // transactions per worker (default 20)
	KeyRange      int           // key universe (default 12; small => overlap)
	Span          int           // interval width of the range demands (default 4)
	LockTimeout   time.Duration // abstract-lock budget (default 15ms)
	CollapseAfter int           // livelock-detector arming (default 16)
	Delay         time.Duration // faultpoint delay at lock waits (default 100µs)
	HoldTime      time.Duration // dwell between a tx's two lock demands (default 300µs)
	Seed          uint64        // workload RNG seed (default 1)
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Goroutines <= 0 {
		c.Goroutines = 6
	}
	if c.TxPerG <= 0 {
		c.TxPerG = 20
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 12
	}
	if c.Span <= 0 {
		c.Span = 4
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 15 * time.Millisecond
	}
	if c.CollapseAfter <= 0 {
		c.CollapseAfter = 16
	}
	if c.Delay <= 0 {
		c.Delay = 100 * time.Microsecond
	}
	if c.HoldTime <= 0 {
		c.HoldTime = 300 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// StormSchedule delays lock waits: every stalled acquisition parks inside the
// window where dooms, wakeups, and timer expiry race, which is exactly where
// a contention policy can lose a wakeup or wound the wrong transaction.
func StormSchedule(d time.Duration) Schedule {
	return Schedule{
		{faultpoint.LockWait, faultpoint.Trigger{Effect: faultpoint.Delay, Delay: d, EveryN: 7}},
	}
}

// StormReport is the outcome of one deadlock storm under one policy.
type StormReport struct {
	Policy     string
	Expected   int64             // transactions the workload submitted
	Events     int               // committed history length
	Shed       int               // Atomic calls that gave up (collapse)
	MaxLatency time.Duration     // slowest single Atomic call, queueing included
	Stats      stm.StatsSnapshot // the storm System's counters
	Err        error             // nil iff both histories checked out
}

// String formats the report for logs.
func (r StormReport) String() string {
	verdict := "serializable"
	if r.Err != nil {
		verdict = r.Err.Error()
	}
	return fmt.Sprintf("storm[%s] expected=%d events=%d shed=%d maxLatency=%v ages(%s) %s [%s]",
		r.Policy, r.Expected, r.Events, r.Shed, r.MaxLatency.Round(time.Millisecond),
		r.Stats.CommitAgeString(), r.Stats.String(), verdict)
}

// RunStorm drives the deadlock storm under the given contention policy and
// verifies both committed histories (keyed set and ordered set, the latter
// including its range queries) against the sequential set specification, plus
// Theorem 5.4 on the quiescent bases. Retries are unbounded: under WoundWait
// and Detect every submitted transaction must eventually commit — only
// contention collapse is an accepted way to give up, and the policy tests
// assert it never happens for them.
func RunStorm(cfg StormConfig, policy lockmgr.ContentionPolicy) StormReport {
	cfg = cfg.withDefaults()
	Disarm()
	StormSchedule(cfg.Delay).Arm()
	defer Disarm()

	keyed := core.NewSkipListSet()
	ordered := core.NewOrderedSet()
	rec := histories.NewRecorder()
	sys := stm.NewSystem(stm.Config{
		LockTimeout:   cfg.LockTimeout,
		Contention:    policy,
		CollapseAfter: cfg.CollapseAfter,
	})

	var (
		shed   atomic.Int64
		maxLat atomic.Int64 // nanoseconds
		fatal  errOnce
		wg     sync.WaitGroup
	)
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed, uint64(g)))
			reversed := g%2 == 1
			for i := 0; i < cfg.TxPerG; i++ {
				k1 := int64(r.IntN(cfg.KeyRange))
				k2 := int64(r.IntN(cfg.KeyRange))
				lo := int64(r.IntN(cfg.KeyRange))
				hi := lo + int64(cfg.Span)
				start := time.Now()
				err := sys.Atomic(func(tx *stm.Tx) error {
					keyedOps := func() {
						a, b := k1, k2
						if reversed {
							a, b = b, a
						}
						ok := keyed.Add(tx, a)
						rec.RecordCall(tx.ID(), "set", "add", []int64{a}, histories.Resp{OK: ok})
						ok = keyed.Remove(tx, b)
						rec.RecordCall(tx.ID(), "set", "remove", []int64{b}, histories.Resp{OK: ok})
					}
					rangedOps := func() {
						// The range query demands [lo, hi]; the point update
						// lands inside it, so the two orders below conflict
						// whenever spans overlap.
						if reversed {
							n := ordered.CountRange(tx, lo, hi)
							rec.RecordCall(tx.ID(), "oset", "countRange", []int64{lo, hi}, histories.Resp{Val: int64(n), OK: true})
							ok := ordered.Add(tx, lo)
							rec.RecordCall(tx.ID(), "oset", "add", []int64{lo}, histories.Resp{OK: ok})
						} else {
							ok := ordered.Add(tx, hi)
							rec.RecordCall(tx.ID(), "oset", "add", []int64{hi}, histories.Resp{OK: ok})
							n := ordered.CountRange(tx, lo, hi)
							rec.RecordCall(tx.ID(), "oset", "countRange", []int64{lo, hi}, histories.Resp{Val: int64(n), OK: true})
						}
					}
					// Adversarial structure order: half the workers lock
					// keyed-then-ranged, half ranged-then-keyed, so wait
					// cycles also span the two lock structures. The dwell
					// between the halves is what lets opposing workers take
					// their first lock before demanding the second — without
					// it a short transaction commits before anyone opposes
					// it (especially on one CPU) and no deadlock ever forms.
					if reversed {
						rangedOps()
						time.Sleep(cfg.HoldTime)
						keyedOps()
					} else {
						keyedOps()
						time.Sleep(cfg.HoldTime)
						rangedOps()
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if d := time.Since(start).Nanoseconds(); true {
					for {
						old := maxLat.Load()
						if d <= old || maxLat.CompareAndSwap(old, d) {
							break
						}
					}
				}
				if err != nil {
					if !shedable(err) {
						fatal.set(fmt.Errorf("storm worker %d: unexpected error: %w", g, err))
						return
					}
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	h := rec.History()
	out := StormReport{
		Policy:     policy.Name(),
		Expected:   int64(cfg.Goroutines * cfg.TxPerG),
		Events:     len(h),
		Shed:       int(shed.Load()),
		MaxLatency: time.Duration(maxLat.Load()),
		Stats:      sys.Stats(),
	}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	specs := map[string]histories.Spec{
		"set":  histories.SetSpec{},
		"oset": histories.SetSpec{},
	}
	if err := histories.CheckStrictSerializability(h, specs); err != nil {
		out.Err = err
		return out
	}
	finals, err := histories.FinalStates(h, specs)
	if err != nil {
		out.Err = err
		return out
	}
	for k := int64(0); k < int64(cfg.KeyRange); k++ {
		want, _, _ := finals["set"].Apply("contains", []int64{k})
		if got := keyed.Base().Contains(k); got != want.OK {
			out.Err = fmt.Errorf("theorem 5.4 violated on keyed set at key %d: base=%v history=%v", k, got, want.OK)
			return out
		}
	}
	for k := int64(0); k < int64(cfg.KeyRange+cfg.Span); k++ {
		want, _, _ := finals["oset"].Apply("contains", []int64{k})
		if got := ordered.Base().Contains(k); got != want.OK {
			out.Err = fmt.Errorf("theorem 5.4 violated on ordered set at key %d: base=%v history=%v", k, got, want.OK)
			return out
		}
	}
	return out
}
