package chaos

// Two-phase-commit crash matrix: kill one protocol role at each of the five
// interesting instants and demand that recovery restores span atomicity.
//
// The harness drives concurrent cross-System spans over two durable
// participants and a durable coordinator. Every span stamps a sentinel key
// (sentinelBase+gid) into BOTH participants' sets alongside random ops, so
// span atomicity is directly observable: after a crash, recovery, and
// in-doubt resolution, each sentinel must be present on both participants or
// on neither — a half-applied span is the one outcome the protocol exists to
// prevent. On top of the sentinel check the harness audits:
//
//	ack      — every span whose Span call returned nil survives recovery on
//	           both participants (the acknowledgment was a durable promise);
//	decision — every span the coordinator's decision log committed survives,
//	           acknowledged or not (the decision record IS the commit point);
//	in-doubt — after Coordinator.Recover, no participant has an unresolved
//	           prepared transaction;
//	state    — replaying the committed spans' effective ops in commit order
//	           reproduces each participant's recovered base key for key.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/stm"
	"tboost/internal/txncoord"
	"tboost/internal/wal"
)

// TwopcSites lists the five kill points of the 2PC crash matrix: two
// participant-side instants around the vote, two coordinator-side instants
// around the decision, and the participant-side instant before the commit
// marker applies.
func TwopcSites() []string {
	return []string{
		faultpoint.TwopcPrePrepare,
		faultpoint.TwopcPostPrepare,
		faultpoint.TwopcPreDecision,
		faultpoint.TwopcPostDecision,
		faultpoint.TwopcPreApply,
	}
}

// sentinelBase offsets sentinel keys out of the random-op key range.
const sentinelBase int64 = 10000

// TwopcConfig sizes one 2PC crash run.
type TwopcConfig struct {
	Site        string // faultpoint to kill at (required)
	Dir         string // root directory; p0/, p1/, coord/ are created inside (required)
	Goroutines  int    // concurrent span drivers (default 4)
	SpansPerG   int    // spans per driver per phase (default 40)
	KeyRange    int    // random-op keys per participant (default 16)
	Seed        uint64 // workload RNG seed (default 1)
	ArtifactDir string // where to drop a divergence report (default $CRASH_ARTIFACT_DIR)
}

func (c TwopcConfig) withDefaults() TwopcConfig {
	if c.Goroutines <= 0 {
		c.Goroutines = 4
	}
	if c.SpansPerG <= 0 {
		c.SpansPerG = 40
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ArtifactDir == "" {
		c.ArtifactDir = os.Getenv("CRASH_ARTIFACT_DIR")
	}
	return c
}

// TwopcReport is the outcome of one 2PC crash run.
type TwopcReport struct {
	Site     string
	Crashed  bool  // the faultpoint actually fired
	Acked    int   // spans acknowledged (Span returned nil)
	Decided  int   // spans with a durable commit decision
	InDoubt  []int // per-participant in-doubt count found at recovery
	Resolved bool  // every in-doubt transaction resolved after Recover
	Err      error // nil iff every check passed
}

func (r TwopcReport) String() string {
	verdict := "recovered consistent"
	if r.Err != nil {
		verdict = r.Err.Error()
	}
	return fmt.Sprintf("%-28s crashed=%-5v acked=%-4d decided=%-4d indoubt=%v resolved=%-5v %s",
		r.Site, r.Crashed, r.Acked, r.Decided, r.InDoubt, r.Resolved, verdict)
}

// spanLedger tracks what the workload knows about every span, per
// participant: effective forward ops recorded at prepare time, gids in
// commit-notify order, and which spans were acknowledged.
type spanLedger struct {
	mu    sync.Mutex
	eff   [2]map[uint64][]fwdOp // per participant: gid → effective ops of its branch
	order [2][]uint64           // per participant: gids in commit (AtCommit) order
	acked map[uint64]bool
}

func newSpanLedger() *spanLedger {
	return &spanLedger{
		eff:   [2]map[uint64][]fwdOp{{}, {}},
		acked: map[uint64]bool{},
	}
}

func (l *spanLedger) prepared(part int, gid uint64, ops []fwdOp) {
	l.mu.Lock()
	l.eff[part][gid] = ops
	l.mu.Unlock()
}

func (l *spanLedger) committed(part int, gid uint64) {
	l.mu.Lock()
	l.order[part] = append(l.order[part], gid)
	l.mu.Unlock()
}

func (l *spanLedger) ack(gid uint64) {
	l.mu.Lock()
	l.acked[gid] = true
	l.mu.Unlock()
}

// twopcRig is one live 2PC deployment: two durable participants and a
// durable coordinator.
type twopcRig struct {
	logs  [2]*wal.Log
	sets  [2]*core.Set[int64]
	syss  [2]*stm.System
	coord *txncoord.Coordinator
}

func openTwopcRig(root string) (*twopcRig, error) {
	rig := &twopcRig{}
	for i := 0; i < 2; i++ {
		log, err := wal.Open(wal.Options{
			Mode:        wal.Group,
			GroupWindow: 500 * time.Microsecond,
			Dir:         filepath.Join(root, fmt.Sprintf("p%d", i)),
		})
		if err != nil {
			return nil, err
		}
		set := core.NewHashSetOf[int64]()
		if err := core.BindSet(log, "set", wal.Int64Codec, set); err != nil {
			return nil, err
		}
		if _, err := log.Recover(); err != nil {
			return nil, err
		}
		rig.logs[i] = log
		rig.sets[i] = set
		rig.syss[i] = stm.NewSystem(stm.Config{
			Durability:  log,
			LockTimeout: 25 * time.Millisecond,
			MaxRetries:  50,
		})
	}
	coord, err := txncoord.New(
		[]txncoord.Participant{
			{Sys: rig.syss[0], Log: rig.logs[0]},
			{Sys: rig.syss[1], Log: rig.logs[1]},
		},
		txncoord.Options{
			Dir:            filepath.Join(root, "coord"),
			PrepareTimeout: 250 * time.Millisecond,
			Retries:        2,
			Backoff:        time.Millisecond,
		},
	)
	if err != nil {
		return nil, err
	}
	rig.coord = coord
	return rig, nil
}

func (rig *twopcRig) close() {
	rig.coord.Close()
	rig.logs[0].Close()
	rig.logs[1].Close()
}

// RunTwopc executes one 2PC crash run: concurrent spans, a kill at cfg.Site,
// then recovery + in-doubt resolution on a rebuilt deployment and the full
// audit.
func RunTwopc(cfg TwopcConfig) TwopcReport {
	cfg = cfg.withDefaults()
	rep := TwopcReport{Site: cfg.Site}
	if cfg.Dir == "" {
		rep.Err = errors.New("twopc: TwopcConfig.Dir is required")
		return rep
	}
	Disarm()
	defer Disarm()

	rig, err := openTwopcRig(cfg.Dir)
	if err != nil {
		rep.Err = err
		return rep
	}
	led := newSpanLedger()

	// Phase A: clean spans, so the crash lands on a log with history.
	if err := runSpanWorkers(cfg, 0, rig, led); err != nil {
		rep.Err = fmt.Errorf("twopc: phase A: %w", err)
		return rep
	}

	// Phase B: the kill, under concurrent load. EveryN lets a few spans
	// through so the crash lands mid-workload.
	faultpoint.Enable(cfg.Site, faultpoint.Trigger{Effect: faultpoint.Crash, OneShot: true, EveryN: 3})
	err = runSpanWorkers(cfg, 1, rig, led)
	fired := faultpoint.Counts(cfg.Site).Fires > 0 // read before Disable resets the site
	faultpoint.Disable(cfg.Site)
	if err != nil {
		rep.Err = fmt.Errorf("twopc: phase B: %w", err)
		return rep
	}
	if !fired {
		rep.Err = fmt.Errorf("twopc: site %s never fired", cfg.Site)
		return rep
	}
	rep.Crashed = true

	// The simulated kill froze exactly one role; every other component shuts
	// down cleanly (the standard single-failure 2PC model).
	rig.close()

	led.mu.Lock()
	rep.Acked = len(led.acked)
	led.mu.Unlock()

	verifyTwopc(cfg, &rep, led)
	if rep.Err != nil {
		writeTwopcArtifact(cfg, rep, led)
	}
	return rep
}

// runSpanWorkers drives one phase of concurrent spans. Each span stamps its
// sentinel into both participants and performs random ops on a small shared
// key range (real contention). Workers treat post-crash failures as the end
// of the run; pre-crash failures are fatal.
func runSpanWorkers(cfg TwopcConfig, phase int, rig *twopcRig, led *spanLedger) error {
	crashFired := func() bool {
		return faultpoint.Counts(cfg.Site).Fires > 0
	}
	var fatal errOnce
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed+uint64(phase)*131, uint64(g)))
			retries := 0
			for i := 0; i < cfg.SpansPerG; i++ {
				// The random plan is fixed before the span starts: the two
				// branches run in parallel goroutines and retry, so they must
				// not share (or re-roll) the driver's RNG mid-flight.
				type planOp struct {
					add bool
					key int64
				}
				var plan [2][]planOp
				for part := 0; part < 2; part++ {
					for j := 0; j < 2; j++ {
						plan[part] = append(plan[part], planOp{
							add: r.IntN(2) == 0,
							key: int64(r.IntN(cfg.KeyRange)),
						})
					}
				}
				branch := func(part int) txncoord.Branch {
					return func(tx *stm.Tx, gid uint64) error {
						var eff []fwdOp
						if rig.sets[part].Add(tx, sentinelBase+int64(gid)) {
							eff = append(eff, fwdOp{"set", core.RedoAdd, sentinelBase + int64(gid)})
						}
						for _, p := range plan[part] {
							if p.add {
								if rig.sets[part].Add(tx, p.key) {
									eff = append(eff, fwdOp{"set", core.RedoAdd, p.key})
								}
							} else {
								if rig.sets[part].Remove(tx, p.key) {
									eff = append(eff, fwdOp{"set", core.RedoRemove, p.key})
								}
							}
						}
						led.prepared(part, gid, eff)
						tx.AtCommit(func() { led.committed(part, gid) })
						return nil
					}
				}
				gid, err := rig.coord.Span(branch(0), branch(1))
				switch {
				case err == nil:
					led.ack(gid)
				case crashFired():
					return // expected fallout of the kill: stop driving
				case shedable(err) || errors.Is(err, context.DeadlineExceeded):
					// Transient: an admission shed, or a cross-span lock
					// deadlock broken by the vote timeout (the span aborted
					// cleanly everywhere). Re-drive it as a fresh span.
					if retries++; retries > 200 {
						fatal.set(fmt.Errorf("span driver %d: no progress after %d transient aborts (last: %v)", g, retries, err))
						return
					}
					i--
				default:
					fatal.set(fmt.Errorf("span driver %d: %w", g, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	return fatal.get()
}

// verifyTwopc rebuilds the deployment from the surviving directories and
// audits atomicity, acknowledgment, decision durability, in-doubt
// resolution, and final state.
func verifyTwopc(cfg TwopcConfig, rep *TwopcReport, led *spanLedger) {
	// Forensic pass first: DumpDir must classify every surviving two-phase
	// transaction, and no plain record may carry a meta op.
	for i := 0; i < 2; i++ {
		dump, err := wal.DumpDir(filepath.Join(cfg.Dir, fmt.Sprintf("p%d", i)))
		if err != nil {
			rep.Err = fmt.Errorf("twopc: dump p%d: %w", i, err)
			return
		}
		for _, p := range dump.Prepares {
			if p.Decision != "commit" && p.Decision != "abort" && p.Decision != "in-doubt" {
				rep.Err = fmt.Errorf("twopc: p%d gid %d has decision %q", i, p.GID, p.Decision)
				return
			}
		}
	}

	// Rebuild for real.
	rig, err := openTwopcRig(cfg.Dir)
	if err != nil {
		rep.Err = fmt.Errorf("twopc: rebuild: %w", err)
		return
	}
	defer rig.close()
	rep.InDoubt = []int{len(rig.logs[0].InDoubt()), len(rig.logs[1].InDoubt())}
	if err := rig.coord.Recover(); err != nil {
		rep.Err = fmt.Errorf("twopc: coordinator recovery: %w", err)
		return
	}
	if n0, n1 := len(rig.logs[0].InDoubt()), len(rig.logs[1].InDoubt()); n0 != 0 || n1 != 0 {
		rep.Err = fmt.Errorf("twopc: %d+%d in-doubt transactions survive Recover", n0, n1)
		return
	}
	rep.Resolved = true

	decided := map[uint64]bool{}
	for _, gid := range rig.coord.Decided() {
		decided[gid] = true
	}
	rep.Decided = len(decided)

	led.mu.Lock()
	defer led.mu.Unlock()

	// Committed spans are exactly: acknowledged ones, plus ones whose commit
	// decision survives in the coordinator's log (acked or not — the
	// decision record is the commit point). An acked span missing its
	// decision would mean Span acknowledged before the decision was durable.
	committed := map[uint64]bool{}
	for gid := range led.acked {
		if !decided[gid] {
			rep.Err = fmt.Errorf("twopc: span %d acknowledged but its decision record is lost", gid)
			return
		}
		committed[gid] = true
	}
	for gid := range decided {
		committed[gid] = true
	}

	// Atomicity via sentinels: every gid either on both participants or on
	// neither, and exactly the committed ones survive.
	maxGID := uint64(0)
	for i := 0; i < 2; i++ {
		for gid := range led.eff[i] {
			if gid > maxGID {
				maxGID = gid
			}
		}
	}
	for gid := uint64(1); gid <= maxGID; gid++ {
		on0 := rig.sets[0].Base().Contains(sentinelBase + int64(gid))
		on1 := rig.sets[1].Base().Contains(sentinelBase + int64(gid))
		if on0 != on1 {
			rep.Err = fmt.Errorf("twopc: HALF-APPLIED span %d: sentinel on p0=%v p1=%v", gid, on0, on1)
			return
		}
		if committed[gid] && !on0 {
			rep.Err = fmt.Errorf("twopc: COMMITTED span %d lost (decided=%v acked=%v)", gid, decided[gid], led.acked[gid])
			return
		}
		if !committed[gid] && on0 {
			rep.Err = fmt.Errorf("twopc: aborted span %d survives on both participants", gid)
			return
		}
	}

	// State check: per participant, replay the committed spans' effective
	// ops — notify order first, then committed-but-never-notified spans (they
	// held their locks to the crash, so no surviving span conflicts after
	// them; appending last is a legal serialization).
	for i := 0; i < 2; i++ {
		model := map[int64]bool{}
		apply := func(gid uint64) {
			for _, op := range led.eff[i][gid] {
				model[op.key] = op.kind == core.RedoAdd
			}
		}
		notified := map[uint64]bool{}
		for _, gid := range led.order[i] {
			if committed[gid] {
				apply(gid)
				notified[gid] = true
			}
		}
		var tail []uint64
		for gid := range committed {
			if !notified[gid] {
				tail = append(tail, gid)
			}
		}
		sort.Slice(tail, func(a, b int) bool { return tail[a] < tail[b] })
		for _, gid := range tail {
			apply(gid)
		}
		for k := int64(0); k < int64(cfg.KeyRange); k++ {
			if got := rig.sets[i].Base().Contains(k); got != model[k] {
				rep.Err = fmt.Errorf("twopc: p%d diverges at key %d: base=%v model=%v", i, k, got, model[k])
				return
			}
		}
	}
}

// writeTwopcArtifact drops a human-readable divergence report for CI to
// upload. Best-effort.
func writeTwopcArtifact(cfg TwopcConfig, rep TwopcReport, led *spanLedger) {
	if cfg.ArtifactDir == "" {
		return
	}
	if err := os.MkdirAll(cfg.ArtifactDir, 0o755); err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "site: %s\nverdict: %v\n%s\n\n", cfg.Site, rep.Err, rep.String())
	for i := 0; i < 2; i++ {
		dump, err := wal.DumpDir(filepath.Join(cfg.Dir, fmt.Sprintf("p%d", i)))
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "participant %d:\n%s\n", i, wal.FormatDump(dump))
	}
	led.mu.Lock()
	fmt.Fprintf(&b, "acked=%d order0=%d order1=%d\n", len(led.acked), len(led.order[0]), len(led.order[1]))
	led.mu.Unlock()
	name := "twopc-" + strings.ReplaceAll(cfg.Site, "/", "-") + ".txt"
	os.WriteFile(filepath.Join(cfg.ArtifactDir, name), []byte(b.String()), 0o644)
}
