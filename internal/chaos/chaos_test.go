package chaos

import (
	"math/rand/v2"
	"testing"

	"tboost/internal/faultpoint"
)

// TestDefaultScheduleSerializable is the headline chaos test: the default
// schedule injects four distinct fault kinds — forced lock timeout, forced
// doom, forced validation failure, and rollback delay — across the boosted
// set, heap, and pipeline queue, and every committed history must replay
// cleanly against its sequential specification.
func TestDefaultScheduleSerializable(t *testing.T) {
	sched := DefaultSchedule()
	rep := Run(Config{}, sched)
	t.Logf("chaos report:\n%s", rep)
	if err := rep.Err(); err != nil {
		t.Fatalf("chaos run violated serializability: %v", err)
	}

	// Each armed fault kind must actually have fired, otherwise the run
	// proved nothing about the recovery path it targets.
	for _, f := range sched {
		c := rep.Faults[f.Site]
		if c.Fires == 0 {
			t.Errorf("fault %v at %s never fired (hits=%d)", f.Trigger.Effect, f.Site, c.Hits)
		}
	}

	// The injected faults must have caused real aborts of the right kinds:
	// timeouts from LockRegistered, dooms from StmPreCommit, validation
	// failures from StmValidate.
	var timeouts, doomed, validation int64
	for _, s := range rep.Structures {
		timeouts += s.Stats.AbortsLockTimeout
		doomed += s.Stats.AbortsDoomed
		validation += s.Stats.AbortsValidation
	}
	if timeouts == 0 {
		t.Error("no lock-timeout aborts despite forced Timeout faults")
	}
	if doomed == 0 {
		t.Error("no doomed aborts despite forced Doom faults")
	}
	if validation == 0 {
		t.Error("no validation aborts despite forced FailValidation faults")
	}
}

// TestRandomSchedules runs a few randomized fault schedules; whatever mix of
// faults lands, serializability must hold.
func TestRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(map[uint64]string{1: "seed1", 2: "seed2", 3: "seed3"}[seed], func(t *testing.T) {
			r := rand.New(rand.NewPCG(seed, 0xc4a05))
			sched := RandomSchedule(r)
			rep := Run(Config{TxPerG: 25, Seed: seed}, sched)
			t.Logf("schedule: %d faults; report:\n%s", len(sched), rep)
			if err := rep.Err(); err != nil {
				t.Fatalf("random schedule (seed %d) violated serializability: %v", seed, err)
			}
		})
	}
}

// TestNoFaultBaseline checks the harness itself: with nothing armed the run
// must be serializable with zero fault fires and the registry disarmed.
func TestNoFaultBaseline(t *testing.T) {
	rep := Run(Config{TxPerG: 20}, nil)
	if err := rep.Err(); err != nil {
		t.Fatalf("fault-free chaos run failed: %v", err)
	}
	for site, c := range rep.Faults {
		if c.Fires != 0 {
			t.Errorf("site %s fired %d times with no schedule armed", site, c.Fires)
		}
	}
	if faultpoint.Armed() != 0 {
		t.Errorf("registry still armed after Run: %d sites", faultpoint.Armed())
	}
}
