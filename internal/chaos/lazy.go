package chaos

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/histories"
	"tboost/internal/stm"
)

// Lazy chaos: the same end-to-end guarantees as Run, demanded of the lazy
// discipline. A lazy transaction's reads are optimistic observations and its
// writes a pending log, so the recovery machinery under fault injection is
// different in kind from the eager runs: a fault mid-drain (the boost/
// lazy-drain site fires as commit acquires each fused op's lock) must abort
// by log truncation with the base untouched, and the history must stay
// strictly serializable even though in-flight reads never held locks.
//
// Each lazy structure also records its post-fusion op stream through a
// journal bound to the kernel object, and the run cross-checks that stream
// with histories.CheckOpLog: every drained op came from a committed
// transaction, applied effectively, and replays to the same final state as
// the method-call history.

// LazyDrainDoomSchedule arms the mid-drain failpoint with forced dooms — the
// contention manager kills the transaction after fusion, while commit holds
// some of the drain locks — plus background lock-registration timeouts.
func LazyDrainDoomSchedule() Schedule {
	return Schedule{
		{faultpoint.BoostLazyDrain, faultpoint.Trigger{Effect: faultpoint.Doom, EveryN: 7}},
		{faultpoint.LockRegistered, faultpoint.Trigger{Effect: faultpoint.Timeout, EveryN: 17}},
		{faultpoint.StmMidRollback, faultpoint.Trigger{Effect: faultpoint.Delay, Delay: 200 * time.Microsecond, EveryN: 5}},
	}
}

// LazyDrainTimeoutSchedule arms the mid-drain failpoint with forced lock
// timeouts — the drain's commit-instant acquisition loses its lock race —
// plus background pre-commit dooms, so both drain-abort paths interleave.
func LazyDrainTimeoutSchedule() Schedule {
	return Schedule{
		{faultpoint.BoostLazyDrain, faultpoint.Trigger{Effect: faultpoint.Timeout, EveryN: 5}},
		{faultpoint.StmPreCommit, faultpoint.Trigger{Effect: faultpoint.Doom, EveryN: 13}},
		{faultpoint.StmMidRollback, faultpoint.Trigger{Effect: faultpoint.Delay, Delay: 200 * time.Microsecond, EveryN: 5}},
	}
}

// RunLazy arms sched, drives the lazy keyed set and the lazy ordered set
// (whose range queries early-flush the pending log mid-transaction), disarms,
// and verifies histories, op logs, and quiescent base states.
func RunLazy(cfg Config, sched Schedule) Report {
	cfg = cfg.withDefaults()
	Disarm()
	sched.Arm()
	defer Disarm()

	rep := Report{}
	rep.Structures = append(rep.Structures,
		runLazySet(cfg),
		runLazyOrdered(cfg),
	)
	rep.Faults = faultpoint.Snapshot()
	return rep
}

// opJournal implements boost.Journal by buffering each transaction's emitted
// ops until the workload's AtCommit hook harvests them — mirroring how the
// WAL sink only persists tx.redo at commit, so ops from aborted transactions
// (possible when an early flush applied eagerly and the transaction later
// rolled back) are dropped, never leaked into the op log. Emit runs while the
// drain holds the op's abstract lock and AtCommit runs before lock release,
// so the harvested log is in serialization order.
type opJournal struct {
	obj string
	mu  sync.Mutex
	buf map[uint64][]histories.OpRec
	ops []histories.OpRec
}

func newOpJournal(obj string) *opJournal {
	return &opJournal{obj: obj, buf: map[uint64][]histories.OpRec{}}
}

func (j *opJournal) Emit(tx *stm.Tx, kind uint8, key int64, aux []byte) {
	method := "add"
	if kind == core.RedoRemove {
		method = "remove"
	}
	j.mu.Lock()
	j.buf[tx.ID()] = append(j.buf[tx.ID()], histories.OpRec{Tx: tx.ID(), Object: j.obj, Method: method, Key: key})
	j.mu.Unlock()
}

// harvest moves txID's buffered ops into the committed op log.
func (j *opJournal) harvest(txID uint64) {
	j.mu.Lock()
	j.ops = append(j.ops, j.buf[txID]...)
	delete(j.buf, txID)
	j.mu.Unlock()
}

func (j *opJournal) log() []histories.OpRec {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ops
}

// runLazySet drives the lazy skip-list set — all point ops, every mutation
// deferred to the pending log and drained at commit — and checks strict
// serializability, the post-fusion op log, and Theorem 5.4.
func runLazySet(cfg Config) StructureReport {
	set := core.NewLazySkipListSet()
	jn := newOpJournal("set")
	set.Engine().BindJournal(jn)
	rec := histories.NewRecorder()
	sys := newSystem(cfg)
	giveUp := errors.New("chaos: deliberate user abort")
	var shed atomic.Int64
	var fatal errOnce
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed+2, uint64(g)))
			for i := 0; i < cfg.TxPerG; i++ {
				fail := r.IntN(5) == 0
				ops := make([][2]int64, cfg.OpsPerTx)
				for j := range ops {
					ops[j] = [2]int64{int64(r.IntN(3)), int64(r.IntN(cfg.KeyRange))}
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					for _, op := range ops {
						k := op[1]
						switch op[0] {
						case 0:
							ok := set.Add(tx, k)
							rec.RecordCall(tx.ID(), "set", "add", []int64{k}, histories.Resp{OK: ok})
						case 1:
							ok := set.Remove(tx, k)
							rec.RecordCall(tx.ID(), "set", "remove", []int64{k}, histories.Resp{OK: ok})
						default:
							ok := set.Contains(tx, k)
							rec.RecordCall(tx.ID(), "set", "contains", []int64{k}, histories.Resp{OK: ok})
						}
					}
					if fail {
						return giveUp
					}
					tx.AtCommit(func() {
						jn.harvest(tx.ID())
						rec.Commit(tx.ID())
					})
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					if !shedable(err) {
						fatal.set(fmt.Errorf("lazy set worker: unexpected error: %w", err))
						return
					}
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	h := rec.History()
	out := StructureReport{Name: "lzset", Events: len(h), Shed: int(shed.Load()), Stats: sys.Stats()}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	out.Err = verifyLazySet(h, jn.log(), "set", func(k int64) bool { return set.Base().Contains(k) }, cfg.KeyRange)
	return out
}

// runLazyOrdered drives the lazy ordered set: point mutations defer, range
// queries early-flush the pending log mid-transaction and run under interval
// locks. Faults landing after a flush exercise the flush-undo path — the
// inverses revert the base and the restored pending entries are discarded
// with the transaction.
func runLazyOrdered(cfg Config) StructureReport {
	set := core.NewLazyOrderedSet()
	jn := newOpJournal("set")
	set.Engine().BindJournal(jn)
	rec := histories.NewRecorder()
	sys := newSystem(cfg)
	giveUp := errors.New("chaos: deliberate user abort")
	var shed atomic.Int64
	var fatal errOnce
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed+3, uint64(g)))
			for i := 0; i < cfg.TxPerG; i++ {
				fail := r.IntN(5) == 0
				ops := make([][2]int64, cfg.OpsPerTx)
				for j := range ops {
					ops[j] = [2]int64{int64(r.IntN(4)), int64(r.IntN(cfg.KeyRange))}
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					for _, op := range ops {
						k := op[1]
						switch op[0] {
						case 0:
							ok := set.Add(tx, k)
							rec.RecordCall(tx.ID(), "set", "add", []int64{k}, histories.Resp{OK: ok})
						case 1:
							ok := set.Remove(tx, k)
							rec.RecordCall(tx.ID(), "set", "remove", []int64{k}, histories.Resp{OK: ok})
						case 2:
							ok := set.Contains(tx, k)
							rec.RecordCall(tx.ID(), "set", "contains", []int64{k}, histories.Resp{OK: ok})
						default:
							hi := k + 4
							n := set.CountRange(tx, k, hi)
							rec.RecordCall(tx.ID(), "set", "countRange", []int64{k, hi}, histories.Resp{Val: int64(n), OK: true})
						}
					}
					if fail {
						return giveUp
					}
					tx.AtCommit(func() {
						jn.harvest(tx.ID())
						rec.Commit(tx.ID())
					})
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					if !shedable(err) {
						fatal.set(fmt.Errorf("lazy ordered worker: unexpected error: %w", err))
						return
					}
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	h := rec.History()
	out := StructureReport{Name: "lzord", Events: len(h), Shed: int(shed.Load()), Stats: sys.Stats()}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	out.Err = verifyLazySet(h, jn.log(), "set", func(k int64) bool { return set.Base().Contains(k) }, cfg.KeyRange+4)
	return out
}

// verifyLazySet runs the three lazy checks on a set history: strict
// serializability of the recorded calls, op-log conformance of the drained
// post-fusion stream, and Theorem 5.4 on the quiescent base.
func verifyLazySet(h histories.History, ops []histories.OpRec, obj string, baseContains func(int64) bool, keyRange int) error {
	specs := map[string]histories.Spec{obj: histories.SetSpec{}}
	if err := histories.CheckStrictSerializability(h, specs); err != nil {
		return err
	}
	if err := histories.CheckOpLog(h, ops, specs); err != nil {
		return err
	}
	finals, err := histories.FinalStates(h, specs)
	if err != nil {
		return err
	}
	for k := int64(0); k < int64(keyRange); k++ {
		want, _, _ := finals[obj].Apply("contains", []int64{k})
		if got := baseContains(k); got != want.OK {
			return fmt.Errorf("theorem 5.4 violated at key %d: base=%v history=%v", k, got, want.OK)
		}
	}
	return nil
}
