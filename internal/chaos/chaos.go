// Package chaos drives the boosted data structures under failpoint-injected
// fault schedules and checks that every committed history remains strictly
// serializable (Theorem 5.3) and that aborted transactions leave no trace on
// the base objects (Theorem 5.4).
//
// The paper's correctness argument leans on recovery machinery that ordinary
// workloads exercise rarely: rollback of multi-entry undo logs, abandonment
// of registered-but-unacquired locks, dooms landing mid-wait, validation
// failures at commit. A chaos run forces those paths deterministically — a
// schedule arms faultpoint sites (see internal/faultpoint) with forced
// timeouts, dooms, validation failures, and delays — and then demands the
// same end-to-end guarantees the paper proves for the fault-free case.
package chaos

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/histories"
	"tboost/internal/stm"
)

// Fault arms one failpoint site with one trigger.
type Fault struct {
	Site    string
	Trigger faultpoint.Trigger
}

// Schedule is a set of faults armed together for one chaos run.
type Schedule []Fault

// Arm installs every fault in the schedule. Callers should defer Disarm.
func (s Schedule) Arm() {
	for _, f := range s {
		faultpoint.Enable(f.Site, f.Trigger)
	}
}

// Disarm clears every failpoint in the process (not just this schedule's):
// chaos runs own the registry while they execute.
func Disarm() { faultpoint.Reset() }

// DefaultSchedule injects the four distinct fault kinds the acceptance
// criteria require — forced timeout, forced doom, forced validation failure,
// and delay — at sites that are hit unconditionally (every lock registration,
// every commit attempt, every rollback), so each kind fires even in a
// single-CPU run with little genuine contention. EveryN gating keeps the
// fault rate low enough that retries make progress.
func DefaultSchedule() Schedule {
	return Schedule{
		{faultpoint.LockRegistered, faultpoint.Trigger{Effect: faultpoint.Timeout, EveryN: 17}},
		{faultpoint.StmPreCommit, faultpoint.Trigger{Effect: faultpoint.Doom, EveryN: 13}},
		{faultpoint.StmValidate, faultpoint.Trigger{Effect: faultpoint.FailValidation, EveryN: 11}},
		{faultpoint.StmMidRollback, faultpoint.Trigger{Effect: faultpoint.Delay, Delay: 200 * time.Microsecond, EveryN: 5}},
	}
}

// RandomSchedule derives a randomized schedule from r: every site gets a
// probabilistic trigger with a random effect drawn from the kinds that make
// sense there. Rates are kept low so workloads still commit.
func RandomSchedule(r *rand.Rand) Schedule {
	var s Schedule
	effects := []faultpoint.Effect{
		faultpoint.Delay, faultpoint.Doom,
		faultpoint.Timeout, faultpoint.FailValidation,
	}
	for _, site := range faultpoint.Sites() {
		if r.IntN(3) == 0 {
			continue // leave some sites unarmed for variety
		}
		eff := effects[r.IntN(len(effects))]
		t := faultpoint.Trigger{Effect: eff, Prob: 0.02 + 0.06*r.Float64()}
		if eff == faultpoint.Delay {
			t.Delay = time.Duration(50+r.IntN(300)) * time.Microsecond
		}
		s = append(s, Fault{Site: site, Trigger: t})
	}
	return s
}

// Config sizes a chaos run. The defaults suit a 1-CPU container: enough
// concurrency to interleave, small enough to finish under the race detector.
type Config struct {
	Goroutines  int           // workers per structure (default 4)
	TxPerG      int           // transactions per worker (default 40)
	OpsPerTx    int           // operations per transaction (default 3)
	KeyRange    int           // key universe per structure (default 16)
	QueueItems  int           // items pushed through the pipeline queue (default 60)
	LockTimeout time.Duration // abstract-lock budget (default 25ms)
	MaxRetries  int           // per-Atomic attempt budget (default 50)
	Seed        uint64        // workload RNG seed (default 1)
}

func (c Config) withDefaults() Config {
	if c.Goroutines <= 0 {
		c.Goroutines = 4
	}
	if c.TxPerG <= 0 {
		c.TxPerG = 40
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 3
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 16
	}
	if c.QueueItems <= 0 {
		c.QueueItems = 60
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 25 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// StructureReport is the verdict for one boosted structure.
type StructureReport struct {
	Name   string
	Events int               // recorded history length
	Shed   int               // Atomic calls that gave up (retry budget, collapse)
	Stats  stm.StatsSnapshot // that structure's private System counters
	Err    error             // nil iff the history checked out
}

// Report is the outcome of one chaos run.
type Report struct {
	Structures []StructureReport
	Faults     map[string]faultpoint.SiteCounts // fault firings per site
}

// Serializable reports whether every structure's history verified.
func (r Report) Serializable() bool {
	for _, s := range r.Structures {
		if s.Err != nil {
			return false
		}
	}
	return true
}

// Err returns the first structure failure, or nil.
func (r Report) Err() error {
	for _, s := range r.Structures {
		if s.Err != nil {
			return fmt.Errorf("chaos: %s: %w", s.Name, s.Err)
		}
	}
	return nil
}

// String formats the report for logs.
func (r Report) String() string {
	var b strings.Builder
	for _, s := range r.Structures {
		verdict := "serializable"
		if s.Err != nil {
			verdict = s.Err.Error()
		}
		fmt.Fprintf(&b, "%-6s events=%-5d shed=%-3d %s [%s]\n",
			s.Name, s.Events, s.Shed, s.Stats.String(), verdict)
	}
	names := make([]string, 0, len(r.Faults))
	for name := range r.Faults {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := r.Faults[name]
		if c.Hits > 0 {
			fmt.Fprintf(&b, "faultpoint %-20s hits=%-6d fires=%d\n", name, c.Hits, c.Fires)
		}
	}
	return b.String()
}

// Run arms sched, drives the boosted skip-list set, heap, and pipeline queue
// with concurrent transactional workloads, disarms, and verifies each
// recorded history against its sequential specification. Structures run one
// after another so each verdict is attributable to one workload.
func Run(cfg Config, sched Schedule) Report {
	cfg = cfg.withDefaults()
	Disarm()
	sched.Arm()
	defer Disarm()

	rep := Report{}
	rep.Structures = append(rep.Structures,
		runSet(cfg),
		runHeap(cfg),
		runQueue(cfg),
	)
	rep.Faults = faultpoint.Snapshot()
	return rep
}

// shedable reports whether err is an accepted way for an Atomic call to give
// up under chaos (as opposed to a bug surfacing).
func shedable(err error) bool {
	return errors.Is(err, stm.ErrTooManyRetries) ||
		errors.Is(err, stm.ErrContentionCollapse)
}

// errOnce keeps the first unexpected workload error across workers.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

func newSystem(cfg Config) *stm.System {
	return stm.NewSystem(stm.Config{
		LockTimeout: cfg.LockTimeout,
		MaxRetries:  cfg.MaxRetries,
	})
}

// runSet drives the boosted skip-list set, recording calls under the
// abstract locks, and checks strict serializability plus Theorem 5.4 (the
// quiescent base set equals the committed history's final state).
func runSet(cfg Config) StructureReport {
	set := core.NewSkipListSet()
	rec := histories.NewRecorder()
	sys := newSystem(cfg)
	giveUp := errors.New("chaos: deliberate user abort")
	var shed atomic.Int64
	var fatal errOnce
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed, uint64(g)))
			for i := 0; i < cfg.TxPerG; i++ {
				fail := r.IntN(5) == 0
				ops := make([][2]int64, cfg.OpsPerTx)
				for j := range ops {
					ops[j] = [2]int64{int64(r.IntN(3)), int64(r.IntN(cfg.KeyRange))}
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					for _, op := range ops {
						k := op[1]
						switch op[0] {
						case 0:
							ok := set.Add(tx, k)
							rec.RecordCall(tx.ID(), "set", "add", []int64{k}, histories.Resp{OK: ok})
						case 1:
							ok := set.Remove(tx, k)
							rec.RecordCall(tx.ID(), "set", "remove", []int64{k}, histories.Resp{OK: ok})
						default:
							ok := set.Contains(tx, k)
							rec.RecordCall(tx.ID(), "set", "contains", []int64{k}, histories.Resp{OK: ok})
						}
					}
					if fail {
						return giveUp
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					if !shedable(err) {
						fatal.set(fmt.Errorf("set worker: unexpected error: %w", err))
						return
					}
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	h := rec.History()
	out := StructureReport{Name: "set", Events: len(h), Shed: int(shed.Load()), Stats: sys.Stats()}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	specs := map[string]histories.Spec{"set": histories.SetSpec{}}
	if err := histories.CheckStrictSerializability(h, specs); err != nil {
		out.Err = err
		return out
	}
	finals, err := histories.FinalStates(h, specs)
	if err != nil {
		out.Err = err
		return out
	}
	for k := int64(0); k < int64(cfg.KeyRange); k++ {
		want, _, _ := finals["set"].Apply("contains", []int64{k})
		if got := set.Base().Contains(k); got != want.OK {
			out.Err = fmt.Errorf("theorem 5.4 violated at key %d: base=%v history=%v", k, got, want.OK)
			return out
		}
	}
	return out
}

// runHeap drives the boosted priority queue (readers/writer abstract lock
// flavour) and checks its history plus the drained quiescent state.
func runHeap(cfg Config) StructureReport {
	h := core.NewHeap[struct{}](core.RWLocked)
	rec := histories.NewRecorder()
	sys := newSystem(cfg)
	giveUp := errors.New("chaos: deliberate user abort")
	var shed atomic.Int64
	var fatal errOnce
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed+1, uint64(g)))
			for i := 0; i < cfg.TxPerG; i++ {
				fail := r.IntN(5) == 0
				ops := make([][2]int64, cfg.OpsPerTx)
				for j := range ops {
					ops[j] = [2]int64{int64(r.IntN(3)), int64(r.IntN(cfg.KeyRange * 4))}
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					for _, op := range ops {
						switch op[0] {
						case 0:
							h.Add(tx, op[1], struct{}{})
							rec.RecordCall(tx.ID(), "pq", "add", []int64{op[1]}, histories.Resp{OK: true})
						case 1:
							k, _, ok := h.RemoveMin(tx)
							rec.RecordCall(tx.ID(), "pq", "removeMin", nil, histories.Resp{Val: k, OK: ok})
						default:
							k, _, ok := h.Min(tx)
							rec.RecordCall(tx.ID(), "pq", "min", nil, histories.Resp{Val: k, OK: ok})
						}
					}
					if fail {
						return giveUp
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					if !shedable(err) {
						fatal.set(fmt.Errorf("heap worker: unexpected error: %w", err))
						return
					}
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	hist := rec.History()
	out := StructureReport{Name: "heap", Events: len(hist), Shed: int(shed.Load()), Stats: sys.Stats()}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	specs := map[string]histories.Spec{"pq": histories.PQSpec{}}
	finals, err := histories.FinalStates(hist, specs)
	if err != nil {
		out.Err = err
		return out
	}
	var want []int64
	st := finals["pq"]
	for {
		r, next, _ := st.Apply("removeMin", nil)
		if !r.OK {
			break
		}
		want = append(want, r.Val)
		st = next
	}
	got := h.DrainQuiescent()
	if len(got) != len(want) {
		out.Err = fmt.Errorf("theorem 5.4 violated: drained %d keys, history implies %d", len(got), len(want))
		return out
	}
	for i := range want {
		if got[i] != want[i] {
			out.Err = fmt.Errorf("theorem 5.4 violated: drain[%d]=%d, history implies %d", i, got[i], want[i])
			return out
		}
	}
	return out
}

// runQueue drives the bounded pipeline queue in its intended SPSC topology
// with a bounded semaphore timeout, so injected faults surface as aborts
// rather than hangs, and checks the committed FIFO history.
func runQueue(cfg Config) StructureReport {
	q := core.NewQueueTimeout[int64](8, 50*time.Millisecond)
	rec := histories.NewRecorder()
	sys := newSystem(cfg)
	var shed atomic.Int64
	var fatal errOnce
	var prodDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		defer prodDone.Store(true)
		for i := int64(0); i < int64(cfg.QueueItems); i++ {
			for {
				if fatal.get() != nil {
					return // consumer died; don't spin on a full queue
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					q.Offer(tx, i)
					rec.RecordCall(tx.ID(), "queue", "offer", []int64{i}, histories.Resp{OK: true})
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if err == nil {
					break
				}
				if !shedable(err) {
					fatal.set(fmt.Errorf("queue producer: unexpected error: %w", err))
					return
				}
				shed.Add(1)
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for {
			if prodDone.Load() && q.LenCommitted() == 0 {
				return
			}
			err := sys.Atomic(func(tx *stm.Tx) error {
				v := q.Take(tx)
				rec.RecordCall(tx.ID(), "queue", "take", nil, histories.Resp{Val: v, OK: true})
				tx.AtCommit(func() { rec.Commit(tx.ID()) })
				return nil
			})
			if err != nil {
				if !shedable(err) {
					fatal.set(fmt.Errorf("queue consumer: unexpected error: %w", err))
					return
				}
				shed.Add(1)
			}
		}
	}()
	wg.Wait()

	h := rec.History()
	out := StructureReport{Name: "queue", Events: len(h), Shed: int(shed.Load()), Stats: sys.Stats()}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	if err := histories.CheckStrictSerializability(h, map[string]histories.Spec{"queue": histories.QueueSpec{}}); err != nil {
		out.Err = err
		return out
	}
	if n := q.LenCommitted(); n != 0 {
		out.Err = fmt.Errorf("theorem 5.4 violated: %d items left committed after full drain", n)
	}
	return out
}
