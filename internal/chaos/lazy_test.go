package chaos

import (
	"math/rand/v2"
	"testing"

	"tboost/internal/faultpoint"
)

// TestLazyNoFaultBaseline checks the lazy harness itself: without faults the
// lazy set and lazy ordered set must produce serializable histories whose
// post-fusion op logs replay to the same final states.
func TestLazyNoFaultBaseline(t *testing.T) {
	rep := RunLazy(Config{TxPerG: 20}, nil)
	t.Logf("lazy chaos report:\n%s", rep)
	if err := rep.Err(); err != nil {
		t.Fatalf("fault-free lazy chaos run failed: %v", err)
	}
}

// TestLazyDrainDoom arms the boost/lazy-drain failpoint with forced dooms:
// the contention manager kills transactions after fusion, while the drain
// holds a prefix of its commit-instant locks. The abort must be pure log
// truncation — nothing applied, nothing emitted — and every surviving
// history and op log must verify.
func TestLazyDrainDoom(t *testing.T) {
	sched := LazyDrainDoomSchedule()
	rep := RunLazy(Config{}, sched)
	t.Logf("lazy chaos report:\n%s", rep)
	if err := rep.Err(); err != nil {
		t.Fatalf("doom-mid-drain run violated serializability: %v", err)
	}
	if c := rep.Faults[faultpoint.BoostLazyDrain]; c.Fires == 0 {
		t.Errorf("boost/lazy-drain never fired (hits=%d)", c.Hits)
	}
	// A doom landing mid-drain is discovered either by the lock manager
	// during the commit-instant acquisition (classified wounded) or by the
	// drain's own doomed re-check before applying (classified doomed);
	// which one wins depends on where in Phase A the fault fired.
	var doomed int64
	for _, s := range rep.Structures {
		doomed += s.Stats.AbortsDoomed + s.Stats.AbortsWounded
	}
	if doomed == 0 {
		t.Error("no doomed/wounded aborts despite forced Doom faults mid-drain")
	}
}

// TestLazyDrainTimeout arms the mid-drain failpoint with forced lock
// timeouts — the commit-instant acquisition itself fails — alongside
// pre-commit dooms, interleaving both drain-abort paths.
func TestLazyDrainTimeout(t *testing.T) {
	sched := LazyDrainTimeoutSchedule()
	rep := RunLazy(Config{}, sched)
	t.Logf("lazy chaos report:\n%s", rep)
	if err := rep.Err(); err != nil {
		t.Fatalf("timeout-mid-drain run violated serializability: %v", err)
	}
	if c := rep.Faults[faultpoint.BoostLazyDrain]; c.Fires == 0 {
		t.Errorf("boost/lazy-drain never fired (hits=%d)", c.Hits)
	}
	var timeouts int64
	for _, s := range rep.Structures {
		timeouts += s.Stats.AbortsLockTimeout
	}
	if timeouts == 0 {
		t.Error("no lock-timeout aborts despite forced Timeout faults mid-drain")
	}
}

// TestLazyRandomSchedules sweeps randomized schedules over the lazy
// structures: the full fault alphabet, including validation failures landing
// between a lazy transaction's unlocked observations and its drain.
func TestLazyRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("lazy chaos sweep skipped in -short mode")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(map[uint64]string{1: "seed1", 2: "seed2", 3: "seed3"}[seed], func(t *testing.T) {
			r := rand.New(rand.NewPCG(seed, 0x1a2b))
			sched := RandomSchedule(r)
			rep := RunLazy(Config{TxPerG: 25, Seed: seed}, sched)
			t.Logf("schedule: %d faults; report:\n%s", len(sched), rep)
			if err := rep.Err(); err != nil {
				t.Fatalf("random lazy schedule (seed %d) violated serializability: %v", seed, err)
			}
		})
	}
}
