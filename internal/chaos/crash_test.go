package chaos

import (
	"testing"

	"tboost/internal/faultpoint"
)

// TestCrashMatrix kills the durability engine at every named WAL failpoint,
// recovers from the surviving directory, and audits the acknowledgment
// contract: acked-durable transactions survive, no partial transactions
// appear, and the recovered state equals a strictly-serializable replay of
// exactly the durable transaction subset. Budgets are sized to stay
// race-detector-friendly; the nightly chaos job runs the same matrix.
func TestCrashMatrix(t *testing.T) {
	for _, site := range CrashSites() {
		site := site
		t.Run(site, func(t *testing.T) {
			rep := RunCrash(CrashConfig{
				Site: site,
				Dir:  t.TempDir(),
			})
			t.Log(rep.String())
			if rep.Err != nil {
				t.Fatal(rep.Err)
			}
			if !rep.Crashed {
				t.Fatal("faultpoint never fired")
			}
		})
	}
}

// TestCrashMatrixSeeds reruns one torn-write-prone site under several seeds —
// crash placement is timing-sensitive, and distinct seeds move the kill
// point across the workload.
func TestCrashMatrixSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		rep := RunCrash(CrashConfig{
			Site: faultpoint.WalMidBatch,
			Dir:  t.TempDir(),
			Seed: seed,
		})
		t.Logf("seed=%d %s", seed, rep.String())
		if rep.Err != nil {
			t.Fatalf("seed %d: %v", seed, rep.Err)
		}
	}
}
