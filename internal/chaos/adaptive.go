package chaos

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/histories"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// Adaptive-granularity chaos: granularity migrations fired into the middle of
// a deadlock storm. The workload is the RunStorm shape — parity-reversed lock
// orders over a point-keyed set and an ordered set, delays injected into lock
// waits so doom/wakeup/expiry races stay open — but the point-keyed set is an
// adaptive engine, and a driver goroutine force-promotes and force-demotes it
// for the storm's whole duration while the boost/promote failpoint pins each
// migration's bridge window open with live traffic inside it. What must
// survive: strict serializability of the committed history, Theorem 5.4 on
// the quiescent base, and progress (no lost wakeups — every worker drains its
// transaction budget; under wound-wait/detect every transaction commits).

// AdaptiveStormSchedule is StormSchedule plus a delay inside every migration's
// bridge window, so each promotion/demotion holds the object in bridge mode —
// both lock tables live — while stalled waiters, wounds, and timer expiries
// race around it.
func AdaptiveStormSchedule(lockDelay, bridgeDelay time.Duration) Schedule {
	return Schedule{
		{faultpoint.LockWait, faultpoint.Trigger{Effect: faultpoint.Delay, Delay: lockDelay, EveryN: 7}},
		{faultpoint.BoostPromote, faultpoint.Trigger{Effect: faultpoint.Delay, Delay: bridgeDelay}},
	}
}

// AdaptiveStormReport extends the storm verdict with migration telemetry.
type AdaptiveStormReport struct {
	StormReport
	Promotions uint64 // completed Coarse→Keyed migrations during the storm
	Demotions  uint64 // completed Keyed→Coarse migrations during the storm
	FinalPhase string // the object's granularity phase when the storm ended
}

// String formats the report for logs.
func (r AdaptiveStormReport) String() string {
	return fmt.Sprintf("%s migrations(promote=%d demote=%d final=%s)",
		r.StormReport, r.Promotions, r.Demotions, r.FinalPhase)
}

// RunAdaptiveStorm drives the deadlock storm against an adaptive point-keyed
// set under the given contention policy, with a migration driver toggling the
// granularity for the storm's whole duration.
func RunAdaptiveStorm(cfg StormConfig, policy lockmgr.ContentionPolicy) AdaptiveStormReport {
	cfg = cfg.withDefaults()
	Disarm()
	AdaptiveStormSchedule(cfg.Delay, 4*cfg.Delay).Arm()
	defer Disarm()

	sys := stm.NewSystem(stm.Config{
		LockTimeout:   cfg.LockTimeout,
		Contention:    policy,
		CollapseAfter: cfg.CollapseAfter,
	})
	keyed := core.NewAdaptiveSkipListSet(sys)
	ordered := core.NewOrderedSet()
	rec := histories.NewRecorder()

	var (
		shed   atomic.Int64
		maxLat atomic.Int64 // nanoseconds
		fatal  errOnce
		wg     sync.WaitGroup
	)
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(cfg.Seed, uint64(g)))
			reversed := g%2 == 1
			for i := 0; i < cfg.TxPerG; i++ {
				k1 := int64(r.IntN(cfg.KeyRange))
				k2 := int64(r.IntN(cfg.KeyRange))
				lo := int64(r.IntN(cfg.KeyRange))
				hi := lo + int64(cfg.Span)
				start := time.Now()
				err := sys.Atomic(func(tx *stm.Tx) error {
					keyedOps := func() {
						a, b := k1, k2
						if reversed {
							a, b = b, a
						}
						ok := keyed.Add(tx, a)
						rec.RecordCall(tx.ID(), "set", "add", []int64{a}, histories.Resp{OK: ok})
						ok = keyed.Remove(tx, b)
						rec.RecordCall(tx.ID(), "set", "remove", []int64{b}, histories.Resp{OK: ok})
					}
					rangedOps := func() {
						if reversed {
							n := ordered.CountRange(tx, lo, hi)
							rec.RecordCall(tx.ID(), "oset", "countRange", []int64{lo, hi}, histories.Resp{Val: int64(n), OK: true})
							ok := ordered.Add(tx, lo)
							rec.RecordCall(tx.ID(), "oset", "add", []int64{lo}, histories.Resp{OK: ok})
						} else {
							ok := ordered.Add(tx, hi)
							rec.RecordCall(tx.ID(), "oset", "add", []int64{hi}, histories.Resp{OK: ok})
							n := ordered.CountRange(tx, lo, hi)
							rec.RecordCall(tx.ID(), "oset", "countRange", []int64{lo, hi}, histories.Resp{Val: int64(n), OK: true})
						}
					}
					if reversed {
						rangedOps()
						time.Sleep(cfg.HoldTime)
						keyedOps()
					} else {
						keyedOps()
						time.Sleep(cfg.HoldTime)
						rangedOps()
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if d := time.Since(start).Nanoseconds(); true {
					for {
						old := maxLat.Load()
						if d <= old || maxLat.CompareAndSwap(old, d) {
							break
						}
					}
				}
				if err != nil {
					if !shedable(err) {
						fatal.set(fmt.Errorf("adaptive storm worker %d: unexpected error: %w", g, err))
						return
					}
					shed.Add(1)
				}
			}
		}()
	}

	// Migration driver: promote/demote in a tight loop until the workers
	// drain. Each Force* runs the full protocol synchronously — bridge
	// publish, the armed faultpoint delay, the call-drain barrier — so every
	// iteration lands a complete migration inside the storm.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				keyed.Engine().ForcePromote()
			} else {
				keyed.Engine().ForceDemote()
			}
			time.Sleep(cfg.Delay)
		}
	}()
	wg.Wait()
	close(stop)
	driver.Wait()

	h := rec.History()
	out := AdaptiveStormReport{StormReport: StormReport{
		Policy:     policy.Name(),
		Expected:   int64(cfg.Goroutines * cfg.TxPerG),
		Events:     len(h),
		Shed:       int(shed.Load()),
		MaxLatency: time.Duration(maxLat.Load()),
		Stats:      sys.Stats(),
	}}
	if as, ok := keyed.Engine().AdaptiveStats(); ok {
		out.Promotions = as.Promotions
		out.Demotions = as.Demotions
		out.FinalPhase = as.Phase
	}
	if err := fatal.get(); err != nil {
		out.Err = err
		return out
	}
	specs := map[string]histories.Spec{
		"set":  histories.SetSpec{},
		"oset": histories.SetSpec{},
	}
	if err := histories.CheckStrictSerializability(h, specs); err != nil {
		out.Err = err
		return out
	}
	finals, err := histories.FinalStates(h, specs)
	if err != nil {
		out.Err = err
		return out
	}
	for k := int64(0); k < int64(cfg.KeyRange); k++ {
		want, _, _ := finals["set"].Apply("contains", []int64{k})
		if got := keyed.Base().Contains(k); got != want.OK {
			out.Err = fmt.Errorf("theorem 5.4 violated on adaptive set at key %d: base=%v history=%v", k, got, want.OK)
			return out
		}
	}
	for k := int64(0); k < int64(cfg.KeyRange+cfg.Span); k++ {
		want, _, _ := finals["oset"].Apply("contains", []int64{k})
		if got := ordered.Base().Contains(k); got != want.OK {
			out.Err = fmt.Errorf("theorem 5.4 violated on ordered set at key %d: base=%v history=%v", k, got, want.OK)
			return out
		}
	}
	return out
}
