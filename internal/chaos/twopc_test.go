package chaos

import (
	"testing"

	"tboost/internal/faultpoint"
)

// TestTwopcCrashMatrix kills one 2PC role at every named kill point —
// participant pre-prepare, participant post-prepare/pre-vote, coordinator
// pre-decision, coordinator post-decision/pre-notify, and participant
// pre-commit-apply — then recovers the whole deployment and audits span
// atomicity: no acknowledged span lost, no half-applied span, every
// in-doubt transaction resolved. The nightly chaos job runs the same matrix
// under -race.
func TestTwopcCrashMatrix(t *testing.T) {
	for _, site := range TwopcSites() {
		site := site
		t.Run(site, func(t *testing.T) {
			rep := RunTwopc(TwopcConfig{
				Site: site,
				Dir:  t.TempDir(),
			})
			t.Log(rep.String())
			if rep.Err != nil {
				t.Fatal(rep.Err)
			}
			if !rep.Crashed {
				t.Fatal("faultpoint never fired")
			}
		})
	}
}

// TestTwopcCrashMatrixSeeds reruns the classic in-doubt site (durable
// prepare, lost vote) under several seeds to move the kill point across the
// workload.
func TestTwopcCrashMatrixSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		rep := RunTwopc(TwopcConfig{
			Site: faultpoint.TwopcPostPrepare,
			Dir:  t.TempDir(),
			Seed: seed,
		})
		t.Logf("seed=%d %s", seed, rep.String())
		if rep.Err != nil {
			t.Fatalf("seed %d: %v", seed, rep.Err)
		}
	}
}
