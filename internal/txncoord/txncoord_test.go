package txncoord

import (
	"errors"
	"path/filepath"
	"testing"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/stm"
	"tboost/internal/wal"
)

// rig is a two-participant deployment: each participant is one System with
// one boosted set, optionally backed by a WAL in dir/p<i>.
type rig struct {
	logs  [2]*wal.Log
	sets  [2]*core.Set[int64]
	coord *Coordinator
}

// openRig builds the deployment. dir == "" runs everything volatile.
func openRig(t *testing.T, dir string, opts Options) *rig {
	t.Helper()
	r := &rig{}
	parts := make([]Participant, 2)
	for i := 0; i < 2; i++ {
		r.sets[i] = core.NewHashSetOf[int64]()
		cfg := stm.Config{MaxRetries: 50}
		if dir != "" {
			l, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "p"+string(rune('0'+i))), Mode: wal.Group})
			if err != nil {
				t.Fatalf("open log %d: %v", i, err)
			}
			if err := core.BindSet(l, "set", wal.Int64Codec, r.sets[i]); err != nil {
				t.Fatalf("bind %d: %v", i, err)
			}
			if _, err := l.Recover(); err != nil {
				t.Fatalf("recover %d: %v", i, err)
			}
			cfg.Durability = l
			r.logs[i] = l
		}
		parts[i] = Participant{Sys: stm.NewSystem(cfg), Log: r.logs[i]}
	}
	if dir != "" && opts.Dir == "" {
		opts.Dir = filepath.Join(dir, "coord")
	}
	c, err := New(parts, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.coord = c
	return r
}

func (r *rig) close() {
	r.coord.Close()
	for _, l := range r.logs {
		if l != nil {
			l.Close()
		}
	}
}

// addBranch returns a branch adding key to set.
func addBranch(set *core.Set[int64], key int64) Branch {
	return func(tx *stm.Tx, _ uint64) error {
		set.Add(tx, key)
		return nil
	}
}

// contains reads set membership through a fresh transaction on sys.
func contains(t *testing.T, sys *stm.System, set *core.Set[int64], key int64) bool {
	t.Helper()
	var on bool
	if err := sys.Atomic(func(tx *stm.Tx) error {
		on = set.Contains(tx, key)
		return nil
	}); err != nil {
		t.Fatalf("read: %v", err)
	}
	return on
}

func TestSpanVolatile(t *testing.T) {
	r := openRig(t, "", Options{})
	defer r.close()
	gid, err := r.coord.Span(addBranch(r.sets[0], 1), addBranch(r.sets[1], 2))
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	if gid == 0 {
		t.Fatal("gid 0")
	}
	if !contains(t, r.coord.parts[0].Sys, r.sets[0], 1) || !contains(t, r.coord.parts[1].Sys, r.sets[1], 2) {
		t.Fatal("span effects missing")
	}
}

func TestSpanDurableSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	r := openRig(t, dir, Options{})
	if _, err := r.coord.Span(addBranch(r.sets[0], 7), addBranch(r.sets[1], 8)); err != nil {
		t.Fatalf("Span: %v", err)
	}
	r.close()

	r2 := openRig(t, dir, Options{})
	defer r2.close()
	if err := r2.coord.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !contains(t, r2.coord.parts[0].Sys, r2.sets[0], 7) || !contains(t, r2.coord.parts[1].Sys, r2.sets[1], 8) {
		t.Fatal("committed span lost across reopen")
	}
}

func TestVoteFailureAbortsWholeSpan(t *testing.T) {
	r := openRig(t, "", Options{})
	defer r.close()
	boom := errors.New("boom")
	_, err := r.coord.Span(
		addBranch(r.sets[0], 3),
		func(tx *stm.Tx, _ uint64) error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if contains(t, r.coord.parts[0].Sys, r.sets[0], 3) {
		t.Fatal("aborted span left effects on the yes-voting participant")
	}
	// The deployment is still healthy: the aborted branch released its locks.
	if _, err := r.coord.Span(addBranch(r.sets[0], 3), addBranch(r.sets[1], 4)); err != nil {
		t.Fatalf("follow-up span: %v", err)
	}
	if !contains(t, r.coord.parts[0].Sys, r.sets[0], 3) {
		t.Fatal("follow-up span missing")
	}
}

func TestNilBranchSkipsParticipant(t *testing.T) {
	r := openRig(t, "", Options{})
	defer r.close()
	if _, err := r.coord.Span(addBranch(r.sets[0], 11), nil); err != nil {
		t.Fatalf("Span: %v", err)
	}
	if !contains(t, r.coord.parts[0].Sys, r.sets[0], 11) {
		t.Fatal("participating branch missing")
	}
}

// TestReadOnlySpanLockFree is the acceptance check for read-only spans:
// cross-System reads over pinned snapshots take zero abstract locks and
// suffer zero aborts, while observing every span published before the pin.
func TestReadOnlySpanLockFree(t *testing.T) {
	r := openRig(t, "", Options{})
	defer r.close()
	for k := int64(0); k < 8; k++ {
		if _, err := r.coord.Span(addBranch(r.sets[0], k), addBranch(r.sets[1], k)); err != nil {
			t.Fatalf("Span %d: %v", k, err)
		}
	}
	before := [2]stm.StatsSnapshot{r.coord.parts[0].Sys.Stats(), r.coord.parts[1].Sys.Stats()}
	span := r.coord.ReadOnlySpan()
	defer span.Close()
	for i := 0; i < 2; i++ {
		for k := int64(0); k < 8; k++ {
			var on bool
			if err := span.Atomic(i, func(tx *stm.Tx) error {
				on = r.sets[i].Contains(tx, k)
				return nil
			}); err != nil {
				t.Fatalf("ro read p%d k%d: %v", i, k, err)
			}
			if !on {
				t.Fatalf("ro span missed key %d on participant %d", k, i)
			}
		}
	}
	for i := 0; i < 2; i++ {
		s := r.coord.parts[i].Sys.Stats()
		if d := s.ReaderLockDemands - before[i].ReaderLockDemands; d != 0 {
			t.Fatalf("participant %d: read-only span demanded %d abstract locks", i, d)
		}
		if d := s.ROAborts - before[i].ROAborts; d != 0 {
			t.Fatalf("participant %d: read-only span aborted %d times", i, d)
		}
	}
	if seqs := span.Seqs(); len(seqs) != 2 {
		t.Fatalf("Seqs: %v", seqs)
	}
}

// TestRecoverCommitsDecidedInDoubt crashes the coordinator after the
// decision record is durable but before any participant hears it. Recovery
// must find both branches in-doubt and commit them from the decision log.
func TestRecoverCommitsDecidedInDoubt(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	r := openRig(t, dir, Options{})
	faultpoint.Enable(faultpoint.TwopcPostDecision, faultpoint.Trigger{Effect: faultpoint.Crash, OneShot: true})
	gid, err := r.coord.Span(addBranch(r.sets[0], 21), addBranch(r.sets[1], 22))
	if !errors.Is(err, ErrCoordinatorCrashed) {
		t.Fatalf("want ErrCoordinatorCrashed, got %v", err)
	}
	faultpoint.Reset()
	// A dead coordinator refuses further spans.
	if _, err := r.coord.Span(addBranch(r.sets[0], 99), addBranch(r.sets[1], 99)); !errors.Is(err, ErrCoordinatorCrashed) {
		t.Fatalf("dead coordinator accepted a span: %v", err)
	}
	r.close()

	r2 := openRig(t, dir, Options{})
	defer r2.close()
	for i, l := range r2.logs {
		if got := len(l.InDoubt()); got != 1 {
			t.Fatalf("participant %d: %d in-doubt txs, want 1", i, got)
		}
	}
	if err := r2.coord.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i, l := range r2.logs {
		if got := len(l.InDoubt()); got != 0 {
			t.Fatalf("participant %d: %d in-doubt txs after Recover", i, got)
		}
	}
	if !contains(t, r2.coord.parts[0].Sys, r2.sets[0], 21) || !contains(t, r2.coord.parts[1].Sys, r2.sets[1], 22) {
		t.Fatal("decided span not committed by recovery")
	}
	// The recovered coordinator never reuses a resolved gid.
	ngid, err := r2.coord.Span(addBranch(r2.sets[0], 30), addBranch(r2.sets[1], 30))
	if err != nil {
		t.Fatalf("post-recovery span: %v", err)
	}
	if ngid <= gid {
		t.Fatalf("gid reused: recovered span got %d, crashed span had %d", ngid, gid)
	}
}

// TestRecoverAbortsUndecidedInDoubt crashes the coordinator before the
// decision: prepared branches survive in the logs, and recovery must
// presume abort for them.
func TestRecoverAbortsUndecidedInDoubt(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	r := openRig(t, dir, Options{})
	faultpoint.Enable(faultpoint.TwopcPreDecision, faultpoint.Trigger{Effect: faultpoint.Crash, OneShot: true})
	if _, err := r.coord.Span(addBranch(r.sets[0], 41), addBranch(r.sets[1], 42)); !errors.Is(err, ErrCoordinatorCrashed) {
		t.Fatalf("want ErrCoordinatorCrashed, got %v", err)
	}
	faultpoint.Reset()
	r.close()

	r2 := openRig(t, dir, Options{})
	defer r2.close()
	if err := r2.coord.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if contains(t, r2.coord.parts[0].Sys, r2.sets[0], 41) || contains(t, r2.coord.parts[1].Sys, r2.sets[1], 42) {
		t.Fatal("undecided span resurrected by recovery")
	}
	// The released locks admit new traffic on the same keys.
	if _, err := r2.coord.Span(addBranch(r2.sets[0], 41), addBranch(r2.sets[1], 42)); err != nil {
		t.Fatalf("post-recovery span: %v", err)
	}
}
