// Package txncoord coordinates two-phase commit across stm.Systems.
//
// A cross-System transaction (a "span") runs one branch per participating
// System. The coordinator drives the textbook presumed-abort protocol over
// the participant surface stm and the WAL expose:
//
//  1. Vote round: every branch runs under System.PrepareCtx, which executes
//     it eagerly (effects in the base, undo logged, abstract locks held) and
//     force-logs its redo stream as the prepare record — the yes vote. Each
//     participant gets a per-vote timeout, with bounded retries on the
//     retryable failures (admission shed, contention, timeout). Any no vote
//     aborts every prepared branch: under presumed-abort that costs no
//     forced write anywhere.
//  2. Decision: with every vote in hand, the coordinator force-logs the
//     commit decision in its own decision log. This write is the commit
//     point of the whole span — before it, a crash aborts the span
//     everywhere (no marker, presumed abort); after it, recovery finds the
//     decision and commits every in-doubt branch.
//  3. Notify: each prepared branch is committed (its marker enters the
//     participant's log, effects become permanent, locks release). A crash
//     between decision and notify leaves branches prepared; Recover resolves
//     them from the decision log.
//
// Branches hold their abstract locks from first effect to notify, so a span
// is serializable against one-System traffic and other spans by exactly the
// boosting argument: conflicting operations are excluded for the span's
// whole lifetime, commuting ones never needed ordering.
//
// Read-only spans skip the protocol entirely: ReadOnlySpan pins each
// participant's MVCC clock at or past the coordinator's high-water commit
// sequence for that participant. Because notify runs under the coordinator's
// mutex — a span publishes on every participant or on none while it is held
// — matched pins can never observe a span on one participant and miss it on
// another. No locks, no votes, no aborts.
package txncoord

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
	"tboost/internal/wal"
)

// ErrCoordinatorCrashed is returned by Span when a coordinator faultpoint
// simulated a crash, and by later Spans on the same (now dead) coordinator.
// Prepared branches are deliberately left prepared — that is the crash being
// simulated — for a recovered coordinator to resolve.
var ErrCoordinatorCrashed = errors.New("txncoord: coordinator crashed (simulated)")

// Participant is one System a coordinator can span. Log is the System's
// durability sink when it has one (used for in-doubt resolution at
// recovery); nil for a volatile participant.
type Participant struct {
	Sys *stm.System
	Log *wal.Log
}

// Options configures a Coordinator.
type Options struct {
	// Dir is the decision log's directory. Empty runs the coordinator
	// volatile: decisions live only in memory, and a coordinator crash
	// aborts every in-flight span at recovery (presumed abort). Durable
	// coordinators survive their own crash: the decision log replays and
	// in-doubt participants resolve to the logged outcome.
	Dir string
	// PrepareTimeout bounds each participant's vote (admission, lock waits,
	// retries inside stm, and the prepare force-log). Zero means no bound.
	PrepareTimeout time.Duration
	// Retries is how many times a failed vote is re-solicited when the
	// failure is retryable (admission shed, contention collapse, retry
	// exhaustion, timeout). Zero votes once.
	Retries int
	// Backoff is the base sleep between vote retries, doubling per attempt.
	Backoff time.Duration
}

// decisionKind is the single op kind of the decision log's one object: a
// committed gid, payload uvarint(gid). Aborts are never logged — presumed
// abort applies to the coordinator's own log too.
const decisionKind uint8 = 1

// decisionSet is the decision log's Durable: the set of committed gids.
type decisionSet struct {
	mu        sync.Mutex
	committed map[uint64]bool
	maxGID    uint64
}

func (d *decisionSet) Replay(kind uint8, data []byte) error {
	if kind != decisionKind {
		return fmt.Errorf("txncoord: decision replay: unknown op kind %d", kind)
	}
	gid, n := binary.Uvarint(data)
	if n <= 0 || n != len(data) {
		return fmt.Errorf("txncoord: decision replay: bad gid payload")
	}
	d.mark(gid)
	return nil
}

func (d *decisionSet) Snapshot(emit func(kind uint8, data []byte) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for gid := range d.committed {
		if err := emit(decisionKind, binary.AppendUvarint(nil, gid)); err != nil {
			return err
		}
	}
	return nil
}

func (d *decisionSet) mark(gid uint64) {
	d.mu.Lock()
	d.committed[gid] = true
	if gid > d.maxGID {
		d.maxGID = gid
	}
	d.mu.Unlock()
}

func (d *decisionSet) isCommitted(gid uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.committed[gid]
}

// Coordinator drives spans over a fixed participant list. Methods are safe
// for concurrent use; concurrent Spans on disjoint footprints proceed in
// parallel through the vote round and serialize only through the short
// notify section.
type Coordinator struct {
	parts []Participant
	opts  Options

	dec   *decisionSet
	dlog  *wal.Log // nil when volatile
	decID uint32

	// mu orders notify rounds and read-only pinning: while held, every span
	// is either fully published on all its participants or on none.
	mu   sync.Mutex
	high []uint64 // per-participant high-water commit sequence

	gidMu   sync.Mutex
	nextGID uint64

	crashed bool
	crashMu sync.Mutex
}

// New opens a coordinator over parts. With a durable Options.Dir the
// decision log is recovered immediately (it has no in-doubt states of its
// own — it is a plain single-System log); participants' in-doubt branches
// are NOT resolved here — call Recover once every participant has been
// recovered and adopted.
func New(parts []Participant, opts Options) (*Coordinator, error) {
	if len(parts) == 0 {
		return nil, errors.New("txncoord: no participants")
	}
	c := &Coordinator{
		parts: parts,
		opts:  opts,
		dec:   &decisionSet{committed: map[uint64]bool{}},
		high:  make([]uint64, len(parts)),
	}
	if opts.Dir != "" {
		dlog, err := wal.Open(wal.Options{Dir: opts.Dir, Mode: wal.Group})
		if err != nil {
			return nil, err
		}
		b, err := wal.Bind(dlog, "decisions", wal.Uint64Codec, c.dec)
		if err != nil {
			dlog.Close()
			return nil, err
		}
		c.decID = b.ID()
		if _, err := dlog.Recover(); err != nil {
			dlog.Close()
			return nil, err
		}
		c.dlog = dlog
	}
	c.nextGID = c.dec.maxGID
	return c, nil
}

// Close closes the decision log. Outstanding spans must have completed.
func (c *Coordinator) Close() error {
	if c.dlog != nil {
		return c.dlog.Close()
	}
	return nil
}

// Branch is one participant's part of a span. It runs under that System's
// usual transactional discipline (eager effects, undo, abstract locks,
// retries) and is told the span's gid.
type Branch func(tx *stm.Tx, gid uint64) error

// Span runs one cross-System transaction: branches[i] on participant i, nil
// meaning not participating. It returns the span's gid and nil once every
// branch is durably committed; any vote failure aborts the whole span and
// returns the first failure. An error wrapping ErrCoordinatorCrashed or a
// decision-log failure means the span's outcome is owned by recovery:
// branches were left prepared, and Recover on a reopened coordinator settles
// them (commit iff the decision record survived).
func (c *Coordinator) Span(branches ...Branch) (uint64, error) {
	if len(branches) != len(c.parts) {
		return 0, fmt.Errorf("txncoord: Span got %d branches for %d participants", len(branches), len(c.parts))
	}
	c.crashMu.Lock()
	dead := c.crashed
	c.crashMu.Unlock()
	if dead {
		return 0, ErrCoordinatorCrashed
	}
	c.gidMu.Lock()
	c.nextGID++
	gid := c.nextGID
	c.gidMu.Unlock()

	// Vote round: all branches in parallel, each with its own timeout and
	// retry budget.
	ptxs := make([]*stm.PreparedTx, len(branches))
	errs := make([]error, len(branches))
	var wg sync.WaitGroup
	for i, fn := range branches {
		if fn == nil {
			continue
		}
		wg.Add(1)
		go func(i int, fn Branch) {
			defer wg.Done()
			ptxs[i], errs[i] = c.prepareOne(i, gid, fn)
		}(i, fn)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		// A no vote: abort every branch that did prepare. Presumed abort
		// makes this free of forced writes on every log.
		for _, p := range ptxs {
			if p != nil {
				p.Abort()
			}
		}
		return gid, fmt.Errorf("txncoord: span %d: participant %d voted no: %w", gid, i, err)
	}

	// Decision point. A crash here is PRE-decision: no marker anywhere, so
	// recovery presumes abort for every prepared branch.
	if faultpoint.Hit(faultpoint.TwopcPreDecision) == faultpoint.Crash {
		c.die()
		return gid, ErrCoordinatorCrashed
	}
	if err := c.logDecision(gid); err != nil {
		// The decision never became durable; the span's branches stay
		// prepared and recovery presumes abort.
		c.die()
		return gid, fmt.Errorf("txncoord: span %d: decision log: %w", gid, err)
	}
	// POST-decision, pre-notify: the span IS committed — the decision record
	// is durable — but no participant knows. Recovery must finish the job.
	if faultpoint.Hit(faultpoint.TwopcPostDecision) == faultpoint.Crash {
		c.die()
		return gid, ErrCoordinatorCrashed
	}

	// Notify round, under mu: a concurrent ReadOnlySpan sees this span on
	// every participant or on none.
	c.mu.Lock()
	defer c.mu.Unlock()
	var nerr error
	for i, p := range ptxs {
		if p == nil {
			continue
		}
		if err := p.Commit(); err != nil && nerr == nil {
			nerr = fmt.Errorf("participant %d: %w", i, err)
		}
		if s := p.CommitSeq(); s > c.high[i] {
			c.high[i] = s
		}
	}
	if nerr != nil {
		// Decided and (at least partially) applied, but some participant's
		// acknowledgment failed: the span may appear whole only after that
		// participant recovers. Not an abort — the decision stands.
		return gid, fmt.Errorf("txncoord: span %d committed but not fully acknowledged: %w", gid, nerr)
	}
	return gid, nil
}

func (c *Coordinator) die() {
	c.crashMu.Lock()
	c.crashed = true
	c.crashMu.Unlock()
}

// prepareOne solicits participant i's vote with timeout and retry.
func (c *Coordinator) prepareOne(i int, gid uint64, fn Branch) (*stm.PreparedTx, error) {
	sys := c.parts[i].Sys
	body := func(tx *stm.Tx) error { return fn(tx, gid) }
	for attempt := 0; ; attempt++ {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if c.opts.PrepareTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, c.opts.PrepareTimeout)
		}
		ptx, err := sys.PrepareCtx(ctx, gid, body)
		cancel()
		if err == nil {
			return ptx, nil
		}
		if attempt >= c.opts.Retries || !retryable(err) {
			return nil, err
		}
		if c.opts.Backoff > 0 {
			time.Sleep(c.opts.Backoff << uint(attempt))
		}
	}
}

// retryable reports whether a vote failure is worth re-soliciting: transient
// overload and contention outcomes, not user errors or frozen logs.
func retryable(err error) bool {
	return errors.Is(err, stm.ErrContentionCollapse) ||
		errors.Is(err, stm.ErrTooManyRetries) ||
		errors.Is(err, context.DeadlineExceeded)
}

// logDecision makes the commit decision durable (the span's commit point),
// then publishes it in memory. Order matters: a decision visible in memory
// but absent from the log could commit a span that a post-crash recovery
// aborts.
func (c *Coordinator) logDecision(gid uint64) error {
	if c.dlog != nil {
		wait := c.dlog.Commit(gid, []stm.RedoOp{
			{Obj: c.decID, Kind: decisionKind, Data: binary.AppendUvarint(nil, gid)},
		})
		if wait != nil {
			if err := wait(); err != nil {
				return err
			}
		}
	}
	c.dec.mark(gid)
	return nil
}

// LogStats snapshots the decision log's counters (zero when volatile) —
// benchmarks charge a span's forced decision write against them.
func (c *Coordinator) LogStats() wal.Stats {
	if c.dlog == nil {
		return wal.Stats{}
	}
	return c.dlog.Stats()
}

// Decided returns every gid with a committed decision, unordered — the
// audit surface for crash harnesses reconstructing "what was promised".
func (c *Coordinator) Decided() []uint64 {
	c.dec.mu.Lock()
	defer c.dec.mu.Unlock()
	out := make([]uint64, 0, len(c.dec.committed))
	for gid := range c.dec.committed {
		out = append(out, gid)
	}
	return out
}

// Recover resolves every participant's in-doubt branches against the
// decision log: committed iff the decision record survived, else presumed
// abort. It adopts unadopted in-doubt transactions first (idempotent), so
// the usual sequence is: recover each participant's log, build its System,
// then New + Recover here, then serve traffic. Recover also advances the gid
// counter past every gid it saw, so reopened coordinators never reuse one.
func (c *Coordinator) Recover() error {
	for _, p := range c.parts {
		if p.Log == nil {
			continue
		}
		if err := p.Log.AdoptInDoubt(p.Sys); err != nil {
			return err
		}
		for _, in := range p.Log.InDoubt() {
			c.gidMu.Lock()
			if in.GID > c.nextGID {
				c.nextGID = in.GID
			}
			c.gidMu.Unlock()
			if err := p.Log.ResolveInDoubt(in.GID, c.dec.isCommitted(in.GID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ROSpan is a read-only cross-System span: one pinned snapshot per
// participant, taken at matched sequences. Reads run lock-free against
// version chains — zero abstract-lock demands, zero aborts — and mutually
// consistent across participants (see the package comment's argument).
type ROSpan struct {
	snaps []*stm.Snapshot
}

// ReadOnlySpan pins every participant at (or past) the coordinator's
// high-water commit sequence for it. The caller must Close the span.
func (c *Coordinator) ReadOnlySpan() *ROSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	snaps := make([]*stm.Snapshot, len(c.parts))
	for i, p := range c.parts {
		snaps[i] = p.Sys.OpenSnapshotAtLeast(c.high[i])
	}
	return &ROSpan{snaps: snaps}
}

// Atomic runs fn as a read-only transaction on participant i's snapshot.
func (r *ROSpan) Atomic(i int, fn func(tx *stm.Tx) error) error {
	return r.snaps[i].Atomic(fn)
}

// Seqs returns the pinned sequence per participant, for tests and stats.
func (r *ROSpan) Seqs() []uint64 {
	out := make([]uint64, len(r.snaps))
	for i, sn := range r.snaps {
		out[i] = sn.Seq()
	}
	return out
}

// Close releases every pin. Idempotent per snapshot.
func (r *ROSpan) Close() {
	for _, sn := range r.snaps {
		sn.Close()
	}
}
