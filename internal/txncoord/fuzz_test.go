package txncoord

import (
	"errors"
	"testing"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// FuzzTwoPhaseAtomicity is a differential fuzzer for span atomicity: a byte
// program drives a sequence of cross-System spans — some poisoned with
// injected stm faults or branch user errors — against a two-participant
// volatile deployment, alongside a trivial sequential model that applies a
// span's operations iff Span returned nil. Atomicity is exactly the
// statement that the two agree: a failed span leaves no effect on either
// participant, a successful one leaves every effect on both. The final
// state is also read back through a read-only span, which must match the
// model and take zero abstract locks.
//
// Program encoding, one span per chunk:
//
//	byte 0    — fault selector: 0 none, 1 doom at stm/pre-commit (one shot),
//	            2 fail validation (one shot), 3 branch user error on
//	            participant bit 2
//	bytes 1-4 — two ops per participant: bit 0 add/remove, bits 1-3 key
const fuzzKeyRange = 8

func FuzzTwoPhaseAtomicity(f *testing.F) {
	f.Add([]byte{0, 0x02, 0x05, 0x08, 0x0b})
	f.Add([]byte{1, 0x02, 0x03, 0x04, 0x05, 0, 0x02, 0x03, 0x04, 0x05})
	f.Add([]byte{2, 0x0f, 0x0e, 0x0d, 0x0c, 3, 0x0f, 0x0e, 0x0d, 0x0c})
	f.Add([]byte{7, 0x01, 0x01, 0x01, 0x01, 0, 0x01, 0x09, 0x01, 0x09})
	f.Fuzz(func(t *testing.T, prog []byte) {
		defer faultpoint.Reset()
		faultpoint.Reset()

		sets := [2]*core.Set[int64]{core.NewHashSetOf[int64](), core.NewHashSetOf[int64]()}
		parts := make([]Participant, 2)
		for i := range parts {
			parts[i] = Participant{Sys: stm.NewSystem(stm.Config{MaxRetries: 50})}
		}
		coord, err := New(parts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()

		model := [2]map[int64]bool{{}, {}}
		userErr := errors.New("fuzz: branch error")

		for len(prog) >= 5 {
			fault, chunk := prog[0], prog[1:5]
			prog = prog[5:]

			type planOp struct {
				add bool
				key int64
			}
			var plan [2][2]planOp
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					b := chunk[i*2+j]
					plan[i][j] = planOp{add: b&1 == 0, key: int64(b>>1) % fuzzKeyRange}
				}
			}

			switch fault & 3 {
			case 1:
				faultpoint.Enable(faultpoint.StmPreCommit, faultpoint.Trigger{Effect: faultpoint.Doom, OneShot: true})
			case 2:
				faultpoint.Enable(faultpoint.StmValidate, faultpoint.Trigger{Effect: faultpoint.FailValidation, OneShot: true})
			}
			errOn := -1
			if fault&3 == 3 {
				errOn = int(fault>>2) & 1
			}

			branch := func(part int) Branch {
				return func(tx *stm.Tx, _ uint64) error {
					for _, op := range plan[part] {
						if op.add {
							sets[part].Add(tx, op.key)
						} else {
							sets[part].Remove(tx, op.key)
						}
					}
					if part == errOn {
						return userErr
					}
					return nil
				}
			}
			_, err := coord.Span(branch(0), branch(1))
			faultpoint.Reset()
			if errOn >= 0 && err == nil {
				t.Fatal("span with an erroring branch committed")
			}
			if err != nil {
				continue // model unchanged: the span must have had no effect
			}
			for i := 0; i < 2; i++ {
				for _, op := range plan[i] {
					model[i][op.key] = op.add
				}
			}
		}

		// Differential check 1: direct reads agree with the model.
		for i := 0; i < 2; i++ {
			for k := int64(0); k < fuzzKeyRange; k++ {
				var on bool
				if err := parts[i].Sys.Atomic(func(tx *stm.Tx) error {
					on = sets[i].Contains(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if on != model[i][k] {
					t.Fatalf("participant %d key %d: set=%v model=%v", i, k, on, model[i][k])
				}
			}
		}

		// Differential check 2: a read-only span sees the same state, with
		// zero abstract-lock demands and zero read-only aborts.
		before := [2]stm.StatsSnapshot{parts[0].Sys.Stats(), parts[1].Sys.Stats()}
		span := coord.ReadOnlySpan()
		defer span.Close()
		for i := 0; i < 2; i++ {
			for k := int64(0); k < fuzzKeyRange; k++ {
				var on bool
				if err := span.Atomic(i, func(tx *stm.Tx) error {
					on = sets[i].Contains(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if on != model[i][k] {
					t.Fatalf("ro span participant %d key %d: set=%v model=%v", i, k, on, model[i][k])
				}
			}
			s := parts[i].Sys.Stats()
			if d := s.ReaderLockDemands - before[i].ReaderLockDemands; d != 0 {
				t.Fatalf("participant %d: read-only span demanded %d locks", i, d)
			}
			if d := s.ROAborts - before[i].ROAborts; d != 0 {
				t.Fatalf("participant %d: read-only span aborted %d times", i, d)
			}
		}
	})
}
