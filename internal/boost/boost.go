// Package boost is the generic transactional-boosting kernel: the one place
// where the paper's methodology (Herlihy & Koskinen, PPoPP 2008) is executed
// against the transaction runtime and the lock manager.
//
// The paper's four rules are a single recipe — wrap a linearizable base
// object (Rule 1), serialize non-commuting calls with abstract locks
// (Rule 2), log a compensating inverse for each effective call (Rule 3), and
// defer disposable calls to after the outcome (Rule 4). Every boosted object
// in internal/core used to re-implement that recipe by hand; here it is one
// engine, and a boosted type is reduced to a *spec*:
//
//   - which lock Discipline the object uses (per-key, coarse, readers/writer,
//     interval), chosen at construction;
//   - per method, an Op descriptor: the call's abstract-lock Demand (its
//     conflict footprint) plus the closures that make it undoable (Inverse)
//     or deferrable (OnCommit/OnAbort).
//
// The Demand names what the *method* needs semantically; the Discipline
// names how the *object* chose to approximate its conflict relation. Acquire
// maps one onto the other, so the same spec runs unchanged under a per-key
// table or a single coarse lock — the Fig. 10 ablation is a constructor
// argument, not a second implementation.
//
// The kernel preserves the hot-path contract of DESIGN.md §6: descriptors
// are plain values (no allocation), and the only allocation a boosted
// mutation pays is its inverse closure.
package boost

import (
	"cmp"
	"fmt"
	"sync"
	"sync/atomic"

	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// Demand classifies the abstract-lock footprint of one boosted method call —
// the part of the conflict relation the call exposes to the lock manager.
type Demand uint8

const (
	// DemandNone: the call commutes with everything (or the object's own
	// linearizable base provides all the isolation it needs). No abstract
	// lock is taken; the paper's unique-ID generator is the canonical case.
	DemandNone Demand = iota
	// DemandKey: the call conflicts only with calls on the same key
	// (add/remove/contains on a set).
	DemandKey
	// DemandRange: the call conflicts with calls whose keys fall inside
	// [Lo, Hi] (a range query over an ordered set).
	DemandRange
	// DemandShared: the call commutes with every other DemandShared call on
	// the object but not with DemandExcl calls (heap add, counter add).
	DemandShared
	// DemandExcl: the call conflicts with every other locked call on the
	// object (heap removeMin, counter get).
	DemandExcl
)

// String returns the lower-case name of the demand.
func (d Demand) String() string {
	switch d {
	case DemandNone:
		return "none"
	case DemandKey:
		return "key"
	case DemandRange:
		return "range"
	case DemandShared:
		return "shared"
	case DemandExcl:
		return "excl"
	default:
		return fmt.Sprintf("demand(%d)", uint8(d))
	}
}

// Op is the descriptor for one boosted method call: the abstract-lock demand
// it presents to Acquire, and the closures Record hands to the runtime. An
// Op is a plain value — building one allocates nothing beyond the closures
// the caller chooses to fill in.
type Op[K comparable] struct {
	// Demand is the call's conflict footprint; Key or [Lo, Hi] qualify it
	// for the key- and interval-granular demands.
	Demand Demand
	Key    K
	Lo, Hi K

	// Inverse is the compensating call logged for Rule 3; it runs (in
	// reverse logging order) iff the transaction aborts. Nil for read-only
	// or ineffective calls.
	Inverse func()
	// OnCommit is a disposable call deferred until after commit (Rule 4),
	// e.g. releasing a semaphore or freeing storage.
	OnCommit func()
	// OnAbort is a disposable call deferred until after rollback completes,
	// e.g. returning an unused ID to its pool.
	OnAbort func()
}

// Key returns the descriptor for a call whose footprint is a single key.
func Key[K comparable](k K) Op[K] { return Op[K]{Demand: DemandKey, Key: k} }

// Span returns the descriptor for a call whose footprint is the interval
// [lo, hi].
func Span[K comparable](lo, hi K) Op[K] { return Op[K]{Demand: DemandRange, Lo: lo, Hi: hi} }

// Shared returns the descriptor for a call that commutes with other Shared
// calls on the same object.
func Shared[K comparable]() Op[K] { return Op[K]{Demand: DemandShared} }

// Excl returns the descriptor for a call that conflicts with every other
// locked call on the same object.
func Excl[K comparable]() Op[K] { return Op[K]{Demand: DemandExcl} }

// Discipline is an object's abstract-lock strategy: how its constructor
// chose to realize the conflict relation its methods demand.
type Discipline uint8

const (
	// Unsynced objects take no abstract locks at all; their methods carry
	// DemandNone and rely on inverses and disposables alone (semaphore,
	// unique-ID, refcount, pool).
	Unsynced Discipline = iota
	// Keyed objects keep one abstract lock per key (the paper's LockKey).
	Keyed
	// Coarse objects funnel every locked call through one exclusive lock —
	// correct for any demand, concurrent for none (Fig. 10's slow variant).
	Coarse
	// ReadWrite objects map shared demands to the read side and exclusive
	// demands to the write side of a readers/writer lock (the boosted heap).
	ReadWrite
	// Ranged objects hold interval locks over an ordered key space; point
	// demands lock the degenerate interval [k, k].
	Ranged
	// Adaptive objects choose between Coarse and Keyed at runtime: one
	// coarse lock while quiet, promotion to a per-key table when contention
	// statistics cross a threshold (and optionally back). See adaptive.go
	// for the migration protocol.
	Adaptive
)

// String returns the lower-case name of the discipline.
func (d Discipline) String() string {
	switch d {
	case Unsynced:
		return "unsynced"
	case Keyed:
		return "keyed"
	case Coarse:
		return "coarse"
	case ReadWrite:
		return "readwrite"
	case Ranged:
		return "ranged"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("discipline(%d)", uint8(d))
	}
}

// rangeTable is the interval-lock backend of a Ranged object. It is an
// interface (rather than *lockmgr.RangeLock[K] directly) so Object[K] itself
// needs only comparable K; the cmp.Ordered constraint lives on NewRanged.
type rangeTable[K comparable] interface {
	LockRange(tx *stm.Tx, lo, hi K)
}

// Object is the boosting engine for one transactional object: it executes
// Op descriptors against the stm runtime and the lock manager. K is the
// object's abstract key space; disciplines that never inspect keys (Coarse,
// ReadWrite, Unsynced) may instantiate it with any comparable type.
type Object[K comparable] struct {
	disc   Discipline
	keyed  *lockmgr.LockMap[K]
	coarse *lockmgr.OwnerLock
	rw     *lockmgr.RWOwnerLock
	ranged rangeTable[K]
	adapt  *adaptCore // non-nil iff disc == Adaptive (keyed and coarse both set)

	// lazy selects the deferred execution discipline (see lazy.go): specs
	// append to a per-tx pending log instead of mutating the base, and the
	// commit-time drain fuses and applies. Chosen at construction.
	lazy bool
	// logPool recycles this object's pending logs across transactions and
	// retry attempts, so steady-state lazy ops allocate nothing.
	logPool sync.Pool
	// lazyLogged / lazyFused are the fusion counters: mutation entries
	// drained, and entries algebraic elimination removed (see LazyStats).
	lazyLogged atomic.Uint64
	lazyFused  atomic.Uint64

	// journal, when bound, receives the forward image of every effective
	// mutation (see Emit). Nil — the default — makes Emit a no-op, so
	// undurable objects pay one predictable branch.
	journal Journal[K]

	// vtab is the per-key version store backing lock-free snapshot reads;
	// nil for unversioned engines (see versions.go). verPool recycles the
	// per-tx pending version logs.
	vtab    *versionTable[K]
	verPool sync.Pool
}

// Journal receives forward operation images from a boosted object. The WAL
// implements it per object (binding the object's key codec and registered
// ID); the kernel only routes. Emit is called from inside boosted methods,
// after the abstract locks for the call are held.
type Journal[K comparable] interface {
	Emit(tx *stm.Tx, kind uint8, key K, aux []byte)
}

// BindJournal attaches j to the object; every subsequent effective mutation
// that the object's spec reports via Emit flows to j. Binding is a
// configuration-time action (before the object is shared between
// goroutines); rebinding or nil-binding mid-flight is not supported.
func (o *Object[K]) BindJournal(j Journal[K]) { o.journal = j }

// Journaled reports whether a journal is bound.
func (o *Object[K]) Journaled() bool { return o.journal != nil }

// Emit reports one effective forward mutation to the bound journal, if any.
// Specs call it exactly where they log the matching inverse: an op enters
// the redo stream iff its compensation enters the undo log, which keeps the
// two logs describing the same state delta. kind is an opcode in the
// object's namespace; aux carries any payload beyond the key (e.g. a map
// value), and may be retained only until Emit returns.
func (o *Object[K]) Emit(tx *stm.Tx, kind uint8, key K, aux []byte) {
	if o.journal == nil {
		return
	}
	o.journal.Emit(tx, kind, key, aux)
}

// NewKeyed returns an engine with one abstract lock per key.
func NewKeyed[K comparable]() *Object[K] {
	return &Object[K]{disc: Keyed, keyed: lockmgr.NewLockMap[K]()}
}

// NewKeyedStripes is NewKeyed with an explicit lock-table stripe count,
// exposed for the striping ablation benchmarks.
func NewKeyedStripes[K comparable](stripes int) *Object[K] {
	return &Object[K]{disc: Keyed, keyed: lockmgr.NewLockMapStripes[K](stripes)}
}

// NewKeyedPolicy is NewKeyed with an explicit contention policy on the
// per-key locks (e.g. lockmgr.WoundWait), overriding the system-wide
// stm.Config.Contention choice. Engines built without an explicit policy —
// every other constructor here — inherit the policy of the System their
// transactions run on, so setting Contention in one place governs every
// boosted object.
func NewKeyedPolicy[K comparable](stripes int, p lockmgr.Policy) *Object[K] {
	return &Object[K]{disc: Keyed, keyed: lockmgr.NewLockMapPolicy[K](stripes, p)}
}

// NewCoarse returns an engine with a single exclusive abstract lock for all
// locked calls.
func NewCoarse[K comparable]() *Object[K] {
	return &Object[K]{disc: Coarse, coarse: lockmgr.NewOwnerLock()}
}

// NewReadWrite returns an engine backed by a readers/writer abstract lock:
// shared demands share, exclusive demands exclude.
func NewReadWrite[K comparable]() *Object[K] {
	return &Object[K]{disc: ReadWrite, rw: lockmgr.NewRWOwnerLock()}
}

// NewRanged returns an engine backed by interval locks over an ordered key
// space: the stripe-partitioned manager by default, or the pre-PR 4
// single-mutex manager when the lockmgr.SetLegacyRangeLocks benchmark knob
// is set at construction time.
func NewRanged[K cmp.Ordered]() *Object[K] {
	if lockmgr.LegacyRangeLocks() {
		return &Object[K]{disc: Ranged, ranged: lockmgr.NewRangeLock[K]()}
	}
	return &Object[K]{disc: Ranged, ranged: lockmgr.NewStripedRangeLock[K]()}
}

// NewRangedPartition is NewRanged with an explicit stripe count and key
// partition for the striped interval-lock table (ablations, or key spaces
// whose default partition clusters badly).
func NewRangedPartition[K cmp.Ordered](stripes int, p lockmgr.Partition[K]) *Object[K] {
	return &Object[K]{disc: Ranged, ranged: lockmgr.NewStripedRangeLockConfig(stripes, p)}
}

// NewUnsynced returns an engine that takes no abstract locks; only
// DemandNone descriptors (inverses and disposables) may pass through it.
func NewUnsynced[K comparable]() *Object[K] {
	return &Object[K]{disc: Unsynced}
}

// Discipline reports the engine's constructed lock discipline. For an
// Adaptive engine this is the constant Adaptive, whatever granularity it is
// currently running at: callers that branch on how a *transaction's* calls
// actually lock must use LatchedDiscipline, which answers through the per-tx
// latch and therefore cannot disagree with the locks the transaction holds.
func (o *Object[K]) Discipline() Discipline { return o.disc }

// LatchedDiscipline reports the effective lock discipline of tx's calls on
// this object: for static engines it is Discipline(); for an Adaptive engine
// it is the granularity tx latched at its first lock demand here — Coarse or
// Keyed, with the transitional bridge reporting Coarse because the coarse
// lock covers the whole footprint. A transaction that has not yet demanded a
// lock latches now, so the answer is guaranteed to match every subsequent
// locked call this transaction makes. Discipline-dependent callers (WAL
// binding adapters, version seeding, tests inspecting lock tables) must use
// this, never the raw mode, or a migration landing between two of their ops
// could split one transaction's view across granularities.
func (o *Object[K]) LatchedDiscipline(tx *stm.Tx) Discipline {
	if o.disc != Adaptive {
		return o.disc
	}
	if o.adapt.latch(tx) == adaptModeKeyed {
		return Keyed
	}
	return Coarse
}

// KeyTable returns the per-key lock table of a Keyed engine, for tests and
// introspection. Adaptive engines also return their table — it exists for
// the object's whole life — but whether a given transaction's locks are in
// it is a per-tx question: consult LatchedDiscipline, not the table's mere
// presence. Nil for every other discipline.
func (o *Object[K]) KeyTable() *lockmgr.LockMap[K] { return o.keyed }

// CoarseLock returns the single abstract lock of a Coarse engine, or the
// coarse half of an Adaptive engine (nil otherwise), for tests and
// introspection.
func (o *Object[K]) CoarseLock() *lockmgr.OwnerLock { return o.coarse }

// rangeStats is the introspection face of the striped interval-lock manager.
// The legacy single-mutex RangeLock does not implement it (no escalation
// concept), so RangeStats reports ok=false there.
type rangeStats interface {
	Escalations() uint64
	SpuriousWakeups() uint64
}

// RangeStats surfaces the interval-lock table's contention counters for a
// Ranged engine: whole-table escalations taken and wait-loop wakeups that
// re-checked and re-blocked. ok is false for non-Ranged engines and for the
// legacy single-mutex manager.
func (o *Object[K]) RangeStats() (escalations, spurious uint64, ok bool) {
	rs, ok := o.ranged.(rangeStats)
	if !ok {
		return 0, 0, false
	}
	return rs.Escalations(), rs.SpuriousWakeups(), true
}

// Acquire satisfies op's abstract-lock demand under the object's discipline
// before the base-object call runs. Acquisition is two-phase (held to
// commit/abort) and reentrant, and aborts tx on timeout — all inherited from
// the lock manager. A demand the discipline cannot express panics: that is a
// spec bug, not a runtime condition.
func (o *Object[K]) Acquire(tx *stm.Tx, op Op[K]) {
	if op.Demand == DemandNone {
		return
	}
	if tx.ReadOnly() && tx.System().StrictReadOnly() {
		// The eager fallback for read-only transactions is legal by
		// default; under StrictReadOnly the workload asserted its readers
		// never leave the lock-free versioned path, so a demand here is a
		// configuration bug (unversioned object in a snapshot read).
		panic("boost: abstract-lock demand by read-only transaction under StrictReadOnly")
	}
	switch o.disc {
	case Keyed:
		if op.Demand != DemandKey {
			panic("boost: keyed discipline cannot express demand " + op.Demand.String())
		}
		o.keyed.Lock(tx, op.Key)
	case Adaptive:
		if op.Demand != DemandKey {
			panic("boost: adaptive discipline cannot express demand " + op.Demand.String())
		}
		// Lock under the granularity this transaction latched at its first
		// demand on this object — never the live mode, which a concurrent
		// migration may move mid-transaction (see adaptive.go).
		switch o.adapt.latch(tx) {
		case adaptModeCoarse:
			o.coarse.Acquire(tx)
		case adaptModeBridge:
			// The bridge holds both tables, coarse strictly first: every
			// bridge call orders the pair identically, so two bridge
			// transactions cannot deadlock between the tables.
			o.coarse.Acquire(tx)
			o.keyed.Lock(tx, op.Key)
		default: // adaptModeKeyed
			o.keyed.Lock(tx, op.Key)
		}
	case Coarse:
		// One lock serializes everything: any demand is (conservatively)
		// satisfied by exclusive ownership.
		o.coarse.Acquire(tx)
	case ReadWrite:
		switch op.Demand {
		case DemandShared:
			o.rw.RLock(tx)
		case DemandExcl:
			o.rw.WLock(tx)
		default:
			panic("boost: readers/writer discipline cannot express demand " + op.Demand.String())
		}
	case Ranged:
		switch op.Demand {
		case DemandKey:
			o.ranged.LockRange(tx, op.Key, op.Key)
		case DemandRange:
			o.ranged.LockRange(tx, op.Lo, op.Hi)
		default:
			panic("boost: ranged discipline cannot express demand " + op.Demand.String())
		}
	default: // Unsynced
		panic("boost: unsynced object given lock demand " + op.Demand.String())
	}
}

// Record hands op's closures to the runtime: the inverse joins the undo log
// (replayed in reverse on abort), the disposables are deferred to after the
// transaction's outcome. Callers invoke Record after the base-object call
// has succeeded, so the inverse compensates exactly what happened.
func (o *Object[K]) Record(tx *stm.Tx, op Op[K]) {
	if op.Inverse != nil {
		tx.Log(op.Inverse)
	}
	if op.OnCommit != nil {
		tx.OnCommit(op.OnCommit)
	}
	if op.OnAbort != nil {
		tx.OnAbort(op.OnAbort)
	}
}

// Relock re-acquires the abstract lock for one logged key on behalf of an
// adopted in-doubt transaction during recovery: the same keyed demand the
// original call made, held to the adopted transaction's commit or abort so
// conflicting traffic blocks exactly as it did before the crash. Valid for
// every durable-bindable discipline (Keyed, Adaptive, Coarse, Ranged — all
// of which can express DemandKey); recovery runs before traffic, so the
// acquisition cannot contend.
func (o *Object[K]) Relock(tx *stm.Tx, key K) {
	o.Acquire(tx, Key(key))
}

// Apply executes a whole descriptor: Acquire, then Record. It suits calls
// whose inverse does not depend on the base call's result (a counter add);
// calls that must first observe the base object's answer use Acquire, run
// the call, and Record the outcome-dependent closures.
func (o *Object[K]) Apply(tx *stm.Tx, op Op[K]) {
	o.Acquire(tx, op)
	o.Record(tx, op)
}

// Inverse logs a compensating inverse with the running transaction
// (Rule 3): it runs iff tx aborts, in reverse logging order. This is the
// kernel's only door to the undo log; boosted objects never call tx.Log.
func Inverse(tx *stm.Tx, undo func()) { tx.Log(undo) }

// OnCommit defers a disposable call to after tx commits (Rule 4).
func OnCommit(tx *stm.Tx, f func()) { tx.OnCommit(f) }

// OnAbort defers a disposable call to after tx's rollback completes
// (Rule 4).
func OnAbort(tx *stm.Tx, f func()) { tx.OnAbort(f) }
