package boost

// Adaptive lock granularity: the Fig. 10 ablation as a runtime policy.
//
// The paper's coarse-vs-keyed comparison is frozen at construction time
// everywhere else in this kernel: NewCoarse is cheap while uncontended (one
// lock, no table, no hashing) and collapses under contention; NewKeyed scales
// and pays the table on every call. An Adaptive engine starts Coarse and
// *promotes itself* to Keyed when the coarse lock's contention meter — a
// per-lock conflict count and blocked-wait EWMA fed from the lock manager's
// slow path (lockmgr.ContentionMeter) — shows sustained blocking. With
// auto-demotion enabled it returns to Coarse after a sustained quiet period.
//
// # The migration protocol
//
// The hard part is switching disciplines while transactions hold abstract
// locks under the old one. Two-phase locking is preserved by a three-state
// mode machine plus two latches already proven out elsewhere in the runtime:
//
//	Coarse ──publish──▶ Bridge ──DrainCalls──▶ Keyed        (promotion)
//	Keyed  ──publish──▶ Bridge ──DrainCalls──▶ Coarse       (demotion)
//
//   - Per-transaction discipline latch (stm.Tx.DisciplineLatch, mirroring
//     the versLive latch): a transaction latches the object's mode at its
//     FIRST lock demand on the object and locks under that mode for its
//     whole attempt — including the commit-time lazy drain and WAL emit
//     instants, which therefore never observe a granularity their locks do
//     not cover. A migration can never split one transaction's footprint
//     across tables.
//
//   - Bridge mode: a transaction that latches Bridge acquires BOTH the
//     coarse lock and the per-key lock, coarse strictly first (a single
//     global order, so bridge transactions cannot deadlock on the pair).
//
//   - Drain barrier (stm.System.DrainCalls): the migration goroutine
//     publishes Bridge, then waits until every Atomic call that began under
//     the old terminal mode has returned, and only then publishes the new
//     terminal mode.
//
// Soundness: any two conflicting calls always share at least one abstract
// lock. Coarse↔Coarse and Coarse↔Bridge share the coarse lock; Bridge↔Bridge
// share both; Bridge↔Keyed share the per-key lock. The only unprotected pair
// would be Coarse↔Keyed — impossible, because the drain barrier separates
// the two terminal populations: the Bridge publish is a seq-cst store
// sequenced before the barrier's generation bump, so a transaction whose
// call entered the post-bump generation must latch Bridge or later, and
// every call from the pre-bump generation (the only ones that can have
// latched the old terminal mode) has returned before the new terminal mode
// is published. The same argument covers demotion with the roles swapped,
// and repeated migrations compose because each barrier fully drains before
// the next terminal publish. DESIGN.md §13 carries the full argument.
//
// Version seeding and WAL emission need no special casing: both run under
// the call's abstract locks, and every mode gives a transaction exclusive
// ownership of the keys it locks (coarse ownership is a superset of per-key
// ownership), so the seed-before-first-mutation and emit-under-lock
// contracts hold across a migration.
//
// # Cost when dormant
//
// A locked call on an adaptive engine that never migrates pays, beyond the
// static coarse path: one atomic load (the mode read inside latch) and a
// linear scan of the transaction's (tiny, pooled) latch list. The contention
// meter lives entirely on the lock manager's blocked path, so the signal
// collection adds zero allocations and zero atomics to uncontended calls —
// the alloc pin in internal/core/alloc_test.go holds the kernel to the
// allocation half of that contract.

import (
	"runtime"
	"sync/atomic"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// Adaptive mode values, stored in the object's mode word and in per-tx
// latches. The zero value is Coarse: adaptive objects start coarse.
const (
	adaptModeCoarse uint32 = iota
	adaptModeBridge
	adaptModeKeyed
)

// AdaptiveConfig tunes an adaptive engine's promotion and demotion policy.
// The zero value selects the defaults noted per field; DefaultAdaptiveConfig
// returns them explicitly.
type AdaptiveConfig struct {
	// PromoteConflicts is how many blocked coarse-lock acquisitions must
	// accumulate (since construction or the last demotion) before promotion
	// is considered. Default 8. It is the flap guard on the conflict axis: a
	// freshly demoted object must re-earn the full count.
	PromoteConflicts uint64
	// PromoteWait is the blocked-wait EWMA threshold: promotion also
	// requires the coarse lock's average blocked wait to reach it. Default
	// 20µs (a genuine scheduler-visible stall, not a cache miss).
	PromoteWait time.Duration
	// DemoteAfter enables auto-demotion when positive: after promotion a
	// governor goroutine samples the meter every DemoteAfter and demotes
	// once DemoteWindows consecutive windows pass with zero new conflicts.
	// Zero (the default) disables auto-demotion — promotion is one-way,
	// which keeps behaviour deterministic for differential tests.
	DemoteAfter time.Duration
	// DemoteWindows is the consecutive-quiet-window count required to
	// demote (hysteresis). Default 3; values below 1 are raised to 1.
	DemoteWindows int
	// Stripes is the per-key lock table's stripe count. Default
	// lockmgr.DefaultStripes.
	Stripes int
}

// DefaultAdaptiveConfig returns the documented defaults.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		PromoteConflicts: 8,
		PromoteWait:      20 * time.Microsecond,
		DemoteAfter:      0,
		DemoteWindows:    3,
		Stripes:          lockmgr.DefaultStripes,
	}
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	d := DefaultAdaptiveConfig()
	if c.PromoteConflicts == 0 {
		c.PromoteConflicts = d.PromoteConflicts
	}
	if c.PromoteWait == 0 {
		c.PromoteWait = d.PromoteWait
	}
	if c.DemoteWindows < 1 {
		c.DemoteWindows = d.DemoteWindows
	}
	if c.Stripes < 1 {
		c.Stripes = d.Stripes
	}
	return c
}

// adaptCore is the discipline state machine of one adaptive object. It is
// deliberately not generic: the per-tx latch keys on its pointer identity,
// and the migration machinery never touches keys.
type adaptCore struct {
	sys   *stm.System
	meter *lockmgr.ContentionMeter
	cfg   AdaptiveConfig

	// mode is the live discipline, moved only by migrate (Coarse/Keyed) with
	// the Bridge value in between. Every locked call loads it at most once
	// per (tx, object) — the latch.
	mode atomic.Uint32
	// migrating serializes migrations: exactly one goroutine may be between
	// the Bridge publish and the terminal publish.
	migrating atomic.Bool
	// promoBase is the meter's conflict count at the last demotion (zero at
	// construction): promotion triggers on conflicts *since then*, so a
	// demoted object re-earns promotion from scratch (hysteresis).
	promoBase atomic.Uint64

	promotions atomic.Uint64
	demotions  atomic.Uint64
}

// latch returns the mode tx locks this object under, latching the live mode
// on the transaction's first demand here. It also pins the engine to the
// system it was constructed for: the drain barrier only waits out calls on
// a.sys, so a transaction from another system would undermine the migration
// protocol — that is a configuration bug, reported loudly.
func (a *adaptCore) latch(tx *stm.Tx) uint32 {
	if tx.System() != a.sys {
		panic("boost: adaptive object used by a transaction on a different stm.System than it was constructed for")
	}
	if m, ok := tx.DisciplineLookup(a); ok {
		return m
	}
	m := a.mode.Load()
	tx.DisciplineLatch(a, m)
	return m
}

// onWaitObserved is the meter's notify hook: it runs on a transaction
// goroutine each time a blocked abstract-lock wait completes, which is
// exactly when the promotion predicate can newly become true. The migration
// itself runs on its own goroutine — the drain barrier must not wait for the
// very call that triggered it.
func (a *adaptCore) onWaitObserved() {
	if a.mode.Load() != adaptModeCoarse {
		return
	}
	if a.meter.Conflicts()-a.promoBase.Load() < a.cfg.PromoteConflicts {
		return
	}
	if a.meter.WaitEWMA() < a.cfg.PromoteWait {
		return
	}
	if !a.migrating.CompareAndSwap(false, true) {
		return // a migration is already in flight
	}
	go a.migrate(adaptModeKeyed)
}

// migrate moves the live mode to target through the bridge + drain protocol.
// The caller must have won the migrating flag; migrate releases it.
func (a *adaptCore) migrate(target uint32) {
	defer a.migrating.Store(false)
	if a.mode.Load() == target {
		return
	}
	// Publish the transitional mode: from this instant every transaction
	// latching fresh holds both tables.
	a.mode.Store(adaptModeBridge)
	// Chaos hook: a Delay here pins the object in bridge mode with live
	// traffic, the window the soundness argument is about.
	faultpoint.Hit(faultpoint.BoostPromote)
	// Grace period: every call that could have latched the old terminal
	// mode returns before the new terminal mode becomes observable.
	a.sys.DrainCalls()
	a.mode.Store(target)
	if target == adaptModeKeyed {
		a.promotions.Add(1)
		a.sys.CountPromotion()
		if a.cfg.DemoteAfter > 0 {
			go a.governor()
		}
	} else {
		// Demotion: future promotions count conflicts from here, so the
		// object must re-earn the keyed table (no flapping on stale counts).
		a.promoBase.Store(a.meter.Conflicts())
		a.demotions.Add(1)
		a.sys.CountDemotion()
	}
}

// force synchronously runs a migration to target, waiting out any in-flight
// migration first. Test/chaos hook; see Object.ForcePromote.
func (a *adaptCore) force(target uint32) {
	for !a.migrating.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	a.migrate(target)
}

// governor is the auto-demotion watcher, alive only while the object is
// Keyed with DemoteAfter set. It samples the meter's conflict count every
// window; DemoteWindows consecutive windows without a new conflict demote
// the object, after which the governor exits (a later promotion starts a
// fresh one).
func (a *adaptCore) governor() {
	quiet := 0
	last := a.meter.Conflicts()
	for {
		time.Sleep(a.cfg.DemoteAfter)
		if a.mode.Load() != adaptModeKeyed {
			return // demoted by force, or mid-migration; stand down
		}
		cur := a.meter.Conflicts()
		if cur != last {
			last, quiet = cur, 0
			continue
		}
		quiet++
		if quiet < a.cfg.DemoteWindows {
			continue
		}
		if a.migrating.CompareAndSwap(false, true) {
			a.migrate(adaptModeCoarse)
		}
		return
	}
}

// NewAdaptive returns an engine that starts with one coarse abstract lock
// and promotes itself to a per-key table when the coarse lock's contention
// meter crosses the default thresholds (see AdaptiveConfig). The engine is
// bound to sys at construction: the migration drain barrier is a property of
// one system's call epochs, so transactions from any other system panic.
//
// Promotion is driven by evidence only the lock manager sees, costs nothing
// while the object is uncontended, and takes effect for transactions that
// begin after the migration's drain barrier; transactions in flight keep the
// granularity they latched. Demotion is off by default — use
// NewAdaptiveConfig with DemoteAfter to enable it.
func NewAdaptive[K comparable](sys *stm.System) *Object[K] {
	return NewAdaptiveConfig[K](sys, AdaptiveConfig{})
}

// NewAdaptiveConfig is NewAdaptive with explicit thresholds.
func NewAdaptiveConfig[K comparable](sys *stm.System, cfg AdaptiveConfig) *Object[K] {
	if sys == nil {
		panic("boost: NewAdaptive requires the stm.System the object will run on")
	}
	a := &adaptCore{sys: sys, cfg: cfg.withDefaults()}
	a.meter = lockmgr.NewContentionMeter(a.onWaitObserved)
	o := &Object[K]{
		disc:   Adaptive,
		adapt:  a,
		coarse: lockmgr.NewOwnerLock(),
		keyed:  lockmgr.NewLockMapStripes[K](a.cfg.Stripes),
	}
	// One meter spans both granularities: while coarse it feeds the
	// promotion predicate; while keyed its conflict count is the governor's
	// quiet-period signal.
	o.coarse.SetMeter(a.meter)
	o.keyed.SetMeter(a.meter)
	return o
}

// NewLazyAdaptive is the lazy twin of NewAdaptive: mutations defer to the
// per-transaction pending log and the commit-time drain acquires its locks
// under whatever granularity the transaction latched (its first lock demand
// is usually the drain itself, so lazy transactions adopt a promotion at
// their very next commit).
func NewLazyAdaptive[K comparable](sys *stm.System) *Object[K] {
	return lazify(NewAdaptiveConfig[K](sys, AdaptiveConfig{}))
}

// NewLazyAdaptiveConfig is NewLazyAdaptive with explicit thresholds.
func NewLazyAdaptiveConfig[K comparable](sys *stm.System, cfg AdaptiveConfig) *Object[K] {
	return lazify(NewAdaptiveConfig[K](sys, cfg))
}

// ForcePromote synchronously migrates an adaptive engine to the keyed
// granularity, regardless of the contention meter, and returns true. It
// reports false for non-adaptive engines. Promotion runs the full protocol —
// bridge publish, drain barrier, terminal publish — so on return every live
// transaction's latched granularity is Bridge or Keyed.
//
// ForcePromote must not be called from inside a transaction on the same
// System: the drain barrier would wait for that transaction's Atomic call to
// return while the call waits for ForcePromote (the stm drain budget turns
// the mistake into a panic). Tests that need a promotion concurrent with a
// live transaction run it on another goroutine, exactly like production
// promotions.
func (o *Object[K]) ForcePromote() bool {
	if o.adapt == nil {
		return false
	}
	o.adapt.force(adaptModeKeyed)
	return true
}

// ForceDemote synchronously migrates an adaptive engine to the coarse
// granularity (the same contract and caveats as ForcePromote).
func (o *Object[K]) ForceDemote() bool {
	if o.adapt == nil {
		return false
	}
	o.adapt.force(adaptModeCoarse)
	return true
}

// AdaptiveStats is a point-in-time view of an adaptive engine's discipline
// state and contention signal, surfaced in benchmark report tables.
type AdaptiveStats struct {
	// Phase is the live mode: "coarse", "bridge", or "keyed".
	Phase string
	// Effective is the live granularity as a Discipline: Coarse or Keyed
	// (the bridge reports Coarse — the coarse lock covers its footprint).
	Effective Discipline
	// Promotions and Demotions count completed migrations on this object.
	Promotions, Demotions uint64
	// Conflicts is the cumulative blocked-acquisition count across both
	// granularities; WaitEWMA the blocked-wait moving average — the raw
	// promotion signal.
	Conflicts uint64
	WaitEWMA  time.Duration
}

// AdaptiveStats reports the engine's adaptive state; ok is false for
// non-adaptive engines.
func (o *Object[K]) AdaptiveStats() (s AdaptiveStats, ok bool) {
	a := o.adapt
	if a == nil {
		return AdaptiveStats{}, false
	}
	s = AdaptiveStats{
		Effective:  Coarse,
		Promotions: a.promotions.Load(),
		Demotions:  a.demotions.Load(),
		Conflicts:  a.meter.Conflicts(),
		WaitEWMA:   a.meter.WaitEWMA(),
	}
	switch a.mode.Load() {
	case adaptModeCoarse:
		s.Phase = "coarse"
	case adaptModeBridge:
		s.Phase = "bridge"
	default:
		s.Phase = "keyed"
		s.Effective = Keyed
	}
	return s, true
}
