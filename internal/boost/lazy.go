package boost

// Lazy discipline: deferred ops, commit-time fusion, commit-instant locks.
//
// Eager boosting (the paper's discipline) acquires a call's abstract lock
// and mutates the base object the moment the call runs, so locks are held
// for the whole transaction body. The lazy discipline defers instead: a
// boosted call appends a small entry to a per-(transaction, object) pending
// log and answers from the log plus an *unlocked* read of the base; nothing
// touches the base — and no abstract lock is taken — until the commit
// instant. At commit the log is fused algebraically (add∘remove annihilate,
// remove∘add reduce, inc∘inc combine into one delta, last-writer-wins for
// map puts), the surviving net ops' locks are acquired, the optimistic
// reads are re-validated under those locks, and only then do the net ops
// run against the base. Aborting a lazy transaction is log truncation: no
// inverse ever needs to replay because nothing was applied.
//
// Correctness leans on the observation-first protocol: the first entry a
// spec logs for a key is a LazyObserve recording what the unlocked base
// read returned. Every answer the transaction produced for that key is a
// deterministic function of that observation plus the pending entries after
// it, so if the observation still holds under the commit-instant lock (and
// two-phase locking keeps it holding until release), every answer is the
// one a serial execution at the commit point would have produced. A failed
// re-check aborts and retries — the optimistic analogue of the eager
// discipline's lock timeout.
//
// Answer-free (quiet) mutations opt out of the protocol: a call whose
// answer the caller discards logs its op with no preceding observation, so
// it costs no base read in the body and no re-check at commit. Such a key's
// net op fuses as an upsert — "make present"/"make absent" — whose apply
// tolerates a no-op base call instead of reading it as staleness. Answers
// to later answering ops on the same key still come from the log: after a
// quiet add the key *is* present in every serialization, whatever the base
// said before.
//
// Range queries cannot be answered from a point-keyed pending log, so lazy
// ordered sets *early-flush*: Flush drains this object's log mid-body with
// eager bookkeeping (inverses logged, entries restorable on nested
// rollback), after which the range query proceeds under its interval lock
// as in the eager discipline.

import (
	"cmp"
	"errors"

	"tboost/internal/faultpoint"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// ErrLazyValidation is the abort cause used when a commit-time drain finds
// that an optimistic observation no longer holds under the abstract lock:
// some conflicting transaction committed between the unlocked read and this
// transaction's commit instant. The retry loop classifies it as a
// validation abort.
var ErrLazyValidation = errors.New("boost: lazy drain validation failed; optimistic read out of date")

func init() { stm.RegisterAbortKind(ErrLazyValidation, stm.KindValidation) }

// LazyKind tags one pending-log entry.
type LazyKind uint8

const (
	// LazyObserve records the answer of an unlocked base read — the key's
	// first entry under the observation-first protocol. For sets OK is the
	// observed membership, for multisets N is the observed count, for maps
	// Val/OK are the observed binding.
	LazyObserve LazyKind = iota
	// LazyAdd defers set.Add(Key).
	LazyAdd
	// LazyRemove defers set.Remove(Key).
	LazyRemove
	// LazyInc defers N occurrences-worth of multiset add (N may be
	// negative for removals; fusion sums deltas).
	LazyInc
	// LazyPut defers map.Put(Key, Val); fusion keeps the last writer.
	LazyPut
	// LazyDelete defers map.Delete(Key).
	LazyDelete
)

// LazyEntry is one deferred operation or observation. Entries are plain
// values appended to a pooled slice, so a deferred mutation allocates
// nothing beyond slice growth (amortized).
type LazyEntry[K comparable] struct {
	Kind LazyKind
	Key  K
	N    int64 // LazyInc delta / LazyObserve'd count / net-op applied flag
	Val  any   // LazyPut value / LazyObserve'd binding
	OK   bool  // LazyObserve'd presence / net set op: checked (observation-backed)
}

// LazySpec is what a boosted object's spec contributes to the drain: how to
// re-check an observation against the base under the commit-instant lock,
// and how to apply one fused net op.
//
// LazyApply returns false when the base call's own answer contradicts the
// observation the net op was fused from — a net set add only survives fusion
// when the key was observed absent, so base.Add answering "already present"
// at the commit instant proves the observation stale (and, the failing call
// being a no-op, leaves the base untouched). Specs whose apply calls carry
// that signal mark the key validate-by-apply during fusion and skip the
// separate phase-B re-read; specs whose applies are unconditionally
// effective (map puts, multiset deltas) always return true and rely on
// phase-B validation. A false return mid-drain triggers unapply of every op
// already applied (LazyUnapply inverts one successful apply; the entry may
// carry state LazyApply stashed for it).
//
// LazyApply with eager=true is the early-flush path — the spec must log
// inverses and route Emit exactly as its eager methods do, because the
// transaction may still abort; with eager=false the transaction is past
// phase-B validation and the op applies bare (plus Emit), reversible only
// through LazyUnapply on the apply-check failure path.
type LazySpec[K comparable] interface {
	LazyValidate(e LazyEntry[K]) bool
	LazyApply(tx *stm.Tx, e *LazyEntry[K], eager bool) bool
	LazyUnapply(e *LazyEntry[K])
}

// lazyAccSpill is the distinct-key count past which fusion's accumulator
// lookup spills from a linear scan to a map, mirroring the lock-set spill
// in the runtime.
const lazyAccSpill = 16

// lazyAcc accumulates one key's entries during fusion.
type lazyAcc[K comparable] struct {
	key   K
	obs   int   // index of the key's first LazyObserve, -1 if none
	last  int   // index of the key's last set/map mutation, -1 if none
	muts  int   // mutation entries seen for the key
	delta int64 // summed LazyInc deltas
	// applyChecked marks a key whose surviving net op re-validates the
	// observation as a side effect of applying (set add/remove: the base
	// call fails exactly when the observed presence went stale), so phase B
	// skips its re-read.
	applyChecked bool
}

// LazyLog is the pending op log of one (transaction, object) pair. It
// implements stm.LazyPending; the runtime drives PrepareCommit /
// ValidateCommit / ApplyCommit across all attached logs so that nothing is
// applied anywhere before every lock is held and every observation has
// re-checked. Logs are pooled per object and reused across attempts and
// Atomic calls.
type LazyLog[K comparable] struct {
	obj  *Object[K]
	spec LazySpec[K]
	ents []LazyEntry[K]

	// Drain scratch, rebuilt by fuse and reused across drains.
	accs   []lazyAcc[K]
	accIdx map[K]int // non-nil once len(accs) > lazyAccSpill
	net    []LazyEntry[K]

	// ro marks a log attached by a read-only transaction: observations may
	// accumulate (the eager-fallback read path), mutations panic. Set by
	// PendingLog at attach time.
	ro bool
}

// Append adds one entry to the pending log.
func (lg *LazyLog[K]) Append(e LazyEntry[K]) {
	if lg.ro && e.Kind != LazyObserve {
		panic("boost: deferred mutation in read-only transaction")
	}
	lg.ents = append(lg.ents, e)
}

// ObservePresence records an unlocked membership read (sets).
func (lg *LazyLog[K]) ObservePresence(key K, present bool) {
	lg.ents = append(lg.ents, LazyEntry[K]{Kind: LazyObserve, Key: key, OK: present})
}

// ObserveCount records an unlocked occurrence-count read (multisets).
func (lg *LazyLog[K]) ObserveCount(key K, n int64) {
	lg.ents = append(lg.ents, LazyEntry[K]{Kind: LazyObserve, Key: key, N: n})
}

// ObserveBinding records an unlocked binding read (maps).
func (lg *LazyLog[K]) ObserveBinding(key K, val any, ok bool) {
	lg.ents = append(lg.ents, LazyEntry[K]{Kind: LazyObserve, Key: key, Val: val, OK: ok})
}

// Membership answers a set-shaped read from the pending log: the latest
// entry for key decides. known=false means the log has never touched key
// and the caller must observe the base first.
func (lg *LazyLog[K]) Membership(key K) (present, known bool) {
	for i := len(lg.ents) - 1; i >= 0; i-- {
		e := &lg.ents[i]
		if e.Key != key {
			continue
		}
		switch e.Kind {
		case LazyAdd:
			return true, true
		case LazyRemove:
			return false, true
		case LazyObserve:
			return e.OK, true
		}
	}
	return false, false
}

// Binding answers a map-shaped read from the pending log.
func (lg *LazyLog[K]) Binding(key K) (val any, ok, known bool) {
	for i := len(lg.ents) - 1; i >= 0; i-- {
		e := &lg.ents[i]
		if e.Key != key {
			continue
		}
		switch e.Kind {
		case LazyPut:
			return e.Val, true, true
		case LazyDelete:
			return nil, false, true
		case LazyObserve:
			return e.Val, e.OK, true
		}
	}
	return nil, false, false
}

// CountDelta answers a multiset-shaped read: the observed base count (if
// any observation was logged) plus the pending delta. known=false means key
// is untouched and the caller must observe first.
func (lg *LazyLog[K]) CountDelta(key K) (obs, delta int64, known bool) {
	for i := range lg.ents {
		e := &lg.ents[i]
		if e.Key != key {
			continue
		}
		switch e.Kind {
		case LazyObserve:
			obs = e.N
			known = true
		case LazyInc:
			delta += e.N
			known = true
		}
	}
	return obs, delta, known
}

// Len reports the number of pending entries.
func (lg *LazyLog[K]) Len() int { return len(lg.ents) }

// TruncateTo discards entries at index n and later, clearing their payload
// references. n past the current length is a no-op (an early flush may have
// shrunk the log below a savepoint recorded before it).
func (lg *LazyLog[K]) TruncateTo(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(lg.ents) {
		return
	}
	clear(lg.ents[n:])
	lg.ents = lg.ents[:n]
}

// acc returns the accumulator for key, creating it on first touch. The
// returned pointer is valid only until the next acc call (the slice may
// grow).
func (lg *LazyLog[K]) acc(key K) *lazyAcc[K] {
	if lg.accIdx != nil {
		if i, ok := lg.accIdx[key]; ok {
			return &lg.accs[i]
		}
	} else {
		for i := range lg.accs {
			if lg.accs[i].key == key {
				return &lg.accs[i]
			}
		}
	}
	lg.accs = append(lg.accs, lazyAcc[K]{key: key, obs: -1, last: -1})
	i := len(lg.accs) - 1
	if lg.accIdx != nil {
		lg.accIdx[key] = i
	} else if len(lg.accs) > lazyAccSpill {
		lg.accIdx = make(map[K]int, 2*lazyAccSpill)
		for j := range lg.accs {
			lg.accIdx[lg.accs[j].key] = j
		}
	}
	return &lg.accs[i]
}

// fuse folds the entry list into per-key accumulators and derives the net
// op list — the algebraic elimination step. Per key:
//
//	set:      final presence vs observed presence; equal → annihilated,
//	          else one LazyAdd or LazyRemove survives
//	multiset: LazyInc deltas sum; zero → annihilated
//	map:      last Put/Delete wins; Delete of a key observed absent →
//	          annihilated
//
// The object's fusion counters advance here: logged counts mutation entries
// drained, fused counts the ones elimination removed.
func (lg *LazyLog[K]) fuse() {
	clear(lg.accs)
	lg.accs = lg.accs[:0]
	lg.accIdx = nil // maps never shrink; drop, as the runtime does lockIdx
	clear(lg.net)
	lg.net = lg.net[:0]
	for i := range lg.ents {
		e := &lg.ents[i]
		a := lg.acc(e.Key)
		switch e.Kind {
		case LazyObserve:
			if a.obs < 0 {
				a.obs = i
			}
		case LazyInc:
			a.delta += e.N
			a.muts++
		default:
			a.last = i
			a.muts++
		}
	}
	logged := 0
	for i := range lg.accs {
		a := &lg.accs[i]
		logged += a.muts
		if a.last >= 0 {
			last := &lg.ents[a.last]
			switch last.Kind {
			case LazyAdd:
				if a.obs >= 0 && lg.ents[a.obs].OK {
					continue // was present, ends present: annihilated
				}
				// Observed keys survive only when observed absent, so the
				// apply's base.Add answers the validation question itself;
				// the net entry's OK records that (checked). Unobserved
				// (quiet) keys apply as upserts: OK=false tells the spec a
				// no-op base call is fine, not staleness.
				a.applyChecked = a.obs >= 0
				lg.net = append(lg.net, LazyEntry[K]{Kind: LazyAdd, Key: a.key, OK: a.applyChecked})
			case LazyRemove:
				if a.obs >= 0 && !lg.ents[a.obs].OK {
					continue // was absent, ends absent: annihilated
				}
				a.applyChecked = a.obs >= 0
				lg.net = append(lg.net, LazyEntry[K]{Kind: LazyRemove, Key: a.key, OK: a.applyChecked})
			case LazyPut:
				lg.net = append(lg.net, LazyEntry[K]{Kind: LazyPut, Key: a.key, Val: last.Val})
			case LazyDelete:
				if a.obs >= 0 && !lg.ents[a.obs].OK {
					continue // deleting a key observed absent: annihilated
				}
				lg.net = append(lg.net, LazyEntry[K]{Kind: LazyDelete, Key: a.key})
			}
		} else if a.delta != 0 {
			lg.net = append(lg.net, LazyEntry[K]{Kind: LazyInc, Key: a.key, N: a.delta})
		}
	}
	lg.obj.lazyLogged.Add(uint64(logged))
	lg.obj.lazyFused.Add(uint64(logged - len(lg.net)))
}

// acquire takes the abstract lock of every key the drain touched —
// surviving net ops *and* annihilated/observed keys, because validation
// needs the observations stable too. Locks are demanded per key in
// first-touch order; the engine maps the demand onto its discipline (keyed
// table, coarse lock, or the degenerate interval [k,k]).
func (lg *LazyLog[K]) acquire(tx *stm.Tx) {
	for i := range lg.accs {
		switch faultpoint.Hit(faultpoint.BoostLazyDrain) {
		case faultpoint.Timeout:
			tx.Abort(lockmgr.ErrTimeout)
		case faultpoint.Doom:
			tx.Doom()
		}
		lg.obj.Acquire(tx, Op[K]{Demand: DemandKey, Key: lg.accs[i].key})
	}
}

// PrepareCommit fuses the log and acquires the commit-instant locks
// (phase A of the drain).
func (lg *LazyLog[K]) PrepareCommit(tx *stm.Tx) {
	lg.fuse()
	lg.acquire(tx)
}

// ValidateCommit re-checks every key's first observation against the base
// under the locks PrepareCommit acquired (phase B). A mismatch means some
// conflicting transaction committed since the unlocked read; the answers
// this transaction handed out may be wrong, so it aborts and retries. Keys
// whose net op is validate-by-apply are skipped: their re-check is the
// apply call itself, saving a base traversal on the common path.
func (lg *LazyLog[K]) ValidateCommit(tx *stm.Tx) {
	for i := range lg.accs {
		a := &lg.accs[i]
		if a.obs < 0 || a.applyChecked {
			continue
		}
		if !lg.spec.LazyValidate(lg.ents[a.obs]) {
			tx.Abort(ErrLazyValidation)
		}
	}
}

// ApplyCommit applies the fused net ops to the base object (phase C) and
// emits their forward images to the redo stream, so the durability sink
// logs the shrunken op list. It returns false when a validate-by-apply op
// discovers its observation stale — the failing call left the base
// untouched, the already-applied prefix has been unapplied, and the runtime
// must unapply every earlier log and abort.
func (lg *LazyLog[K]) ApplyCommit(tx *stm.Tx) bool {
	for i := range lg.net {
		if !lg.spec.LazyApply(tx, &lg.net[i], false) {
			for j := i - 1; j >= 0; j-- {
				lg.spec.LazyUnapply(&lg.net[j])
			}
			return false
		}
	}
	return true
}

// UnapplyCommit inverts a completed ApplyCommit, newest op first. The
// runtime calls it on logs whose phase C already ran when a later log's
// apply-check failed; the abstract locks from PrepareCommit are still held,
// so the inversion is invisible to other transactions.
func (lg *LazyLog[K]) UnapplyCommit() {
	for i := len(lg.net) - 1; i >= 0; i-- {
		lg.spec.LazyUnapply(&lg.net[i])
	}
}

// Flush early-drains this log mid-body: fuse, lock, validate, then apply
// with eager bookkeeping (inverses logged, Emit routed) so a later abort
// rolls the applied ops back, and an undo closure restores the flushed
// entries so a *nested* rollback re-pends rather than loses them. Lazy
// ordered sets call it before range queries, which the point-keyed pending
// log cannot answer.
func (lg *LazyLog[K]) Flush(tx *stm.Tx) {
	if len(lg.ents) == 0 {
		return
	}
	lg.fuse()
	lg.acquire(tx)
	for i := range lg.accs {
		a := &lg.accs[i]
		if a.obs >= 0 && !a.applyChecked && !lg.spec.LazyValidate(lg.ents[a.obs]) {
			tx.Abort(ErrLazyValidation)
		}
	}
	snap := make([]LazyEntry[K], len(lg.ents))
	copy(snap, lg.ents)
	tx.Log(func() { lg.restorePrefix(snap) })
	for i := range lg.net {
		// eager=true logged an inverse for every op already applied, so an
		// apply-check failure here aborts through the ordinary undo log.
		if !lg.spec.LazyApply(tx, &lg.net[i], true) {
			tx.Abort(ErrLazyValidation)
		}
	}
	lg.TruncateTo(0)
}

// restorePrefix re-pends a flushed snapshot ahead of whatever the log holds
// now. It runs as an undo closure, in reverse flush order, so repeated
// flushes reassemble the original entry sequence.
func (lg *LazyLog[K]) restorePrefix(snap []LazyEntry[K]) {
	if len(lg.ents) == 0 {
		lg.ents = append(lg.ents, snap...)
		return
	}
	merged := make([]LazyEntry[K], 0, len(snap)+len(lg.ents))
	merged = append(merged, snap...)
	merged = append(merged, lg.ents...)
	lg.ents = merged
}

// Recycle clears the log and returns it to its object's pool. Called by the
// runtime exactly once per attachment, after commit or rollback.
func (lg *LazyLog[K]) Recycle() {
	lg.TruncateTo(0)
	clear(lg.accs)
	lg.accs = lg.accs[:0]
	lg.accIdx = nil
	clear(lg.net)
	lg.net = lg.net[:0]
	lg.obj.logPool.Put(lg)
}

// PendingLog returns the pending log attaching this object to tx, creating
// and attaching one (from the object's pool) on first use. spec is the
// boosted object's drain callbacks; every call for one object must pass the
// same spec.
func (o *Object[K]) PendingLog(tx *stm.Tx, spec LazySpec[K]) *LazyLog[K] {
	if p := tx.LazyLookup(o); p != nil {
		return p.(*LazyLog[K])
	}
	lg, _ := o.logPool.Get().(*LazyLog[K])
	if lg == nil {
		lg = new(LazyLog[K])
	}
	lg.obj, lg.spec, lg.ro = o, spec, tx.ReadOnly()
	tx.LazyAttach(o, lg)
	return lg
}

// FlushPending early-drains tx's pending log for this object, if any (see
// LazyLog.Flush). A transaction that never deferred an op here is a no-op.
func (o *Object[K]) FlushPending(tx *stm.Tx) {
	if p := tx.LazyLookup(o); p != nil {
		p.(*LazyLog[K]).Flush(tx)
	}
}

// Lazy reports whether the engine runs the lazy discipline: specs defer
// mutations to a pending log and the kernel drains it at commit.
func (o *Object[K]) Lazy() bool { return o.lazy }

// LazyStats reports the object's fusion counters: mutation entries drained
// from pending logs (logged) and how many of them algebraic elimination
// removed before they reached the base (fused). Counters accumulate across
// retries; the fusion ratio fused/logged is the benchmark column.
func (o *Object[K]) LazyStats() (logged, fused uint64) {
	return o.lazyLogged.Load(), o.lazyFused.Load()
}

var _ stm.LazyPending = (*LazyLog[int])(nil)

// lazify flips a freshly constructed engine into the lazy discipline.
func lazify[K comparable](o *Object[K]) *Object[K] {
	o.lazy = true
	return o
}

// NewLazyKeyed returns a lazy engine with one abstract lock per key; locks
// are only taken at the commit instant, by the drain.
func NewLazyKeyed[K comparable]() *Object[K] { return lazify(NewKeyed[K]()) }

// NewLazyKeyedStripes is NewLazyKeyed with an explicit lock-table stripe
// count.
func NewLazyKeyedStripes[K comparable](stripes int) *Object[K] {
	return lazify(NewKeyedStripes[K](stripes))
}

// NewLazyKeyedPolicy is NewLazyKeyed with an explicit contention policy on
// the per-key locks.
func NewLazyKeyedPolicy[K comparable](stripes int, p lockmgr.Policy) *Object[K] {
	return lazify(NewKeyedPolicy[K](stripes, p))
}

// NewLazyCoarse returns a lazy engine whose drain funnels through one
// exclusive lock.
func NewLazyCoarse[K comparable]() *Object[K] { return lazify(NewCoarse[K]()) }

// NewLazyRanged returns a lazy engine over interval locks: deferred point
// ops lock [k,k] at the drain; range queries early-flush and lock their
// interval eagerly (the pending log is point-keyed).
func NewLazyRanged[K cmp.Ordered]() *Object[K] { return lazify(NewRanged[K]()) }

// NewLazyRangedPartition is NewLazyRanged with an explicit stripe count and
// key partition.
func NewLazyRangedPartition[K cmp.Ordered](stripes int, p lockmgr.Partition[K]) *Object[K] {
	return lazify(NewRangedPartition(stripes, p))
}
