package boost

// Bounded per-key version history — the storage half of the multi-version
// read path (see internal/mvcc for the clock and pin registry, internal/stm
// readonly.go for the transaction side).
//
// A versioned engine keeps, per key, a short chain of committed states
// ordered by commit sequence number. Writers build the chains from the ops
// they already execute:
//
//   - Seed-before-mutate: before the first base mutation of a key whose
//     chain is empty, the writer — holding the key's exclusive abstract
//     lock — plants the key's current (committed, by two-phase locking)
//     state as a floor entry at sequence 0. Planting happens *before* the
//     base mutation, which is what makes the lock-free reader's double-check
//     protocol sound (see VersionAt).
//   - Record-at-commit: the post-op state of each mutated key is appended to
//     a per-(transaction, object) pending log (the LazyLog attach/spill
//     idiom) and published into the chains only at the commit point, under
//     the transaction's commit sequence number, while its abstract locks are
//     still held. An aborted transaction discards the log; chains only ever
//     contain committed states.
//
// Recording absolute post-op states is sound precisely when the committing
// transaction holds an exclusive lock on the key until after publication —
// true for the Keyed and Coarse disciplines and for Ranged point ops. It is
// *not* true for shared-demand objects (counter add, heap add): two
// commuting adds may publish in either order, and the later sequence would
// carry the wrong absolute value. Those objects stay unversioned and their
// read-only reads fall back to eager locking.
//
// Garbage collection: each publication trims its key's chain to the newest
// entry at-or-below the manager's trim bound (min of oldest pin and visible
// sequence) plus everything newer. With no pins, steady state is one entry
// per touched key; a long-lived pin visibly grows the retained gauge, and
// releasing it lets subsequent publications (or CompactVersions) reclaim.

import (
	"hash/maphash"
	"sync"

	"tboost/internal/mvcc"
	"tboost/internal/stm"
)

// Version is one committed state of one key. The payload fields mirror the
// shapes core specs need: Present for set membership and map binding
// presence, N for multiset counts, Val for map values. Unused fields stay
// zero.
type Version struct {
	Seq     uint64 // commit sequence; 0 for the pre-history floor entry
	Present bool
	N       int64
	Val     any
}

// verStripes is the version table's stripe count: a power of two so the
// stripe pick is a mask, sized like the lock table so readers and committers
// on different keys rarely share a stripe mutex.
const verStripes = 64

// verSpill is the per-stripe chain count past which the linear scan spills
// to a map, mirroring the runtime's lock-set spill.
const verSpill = 16

// verChain is one key's version history, ascending by sequence. Invariant:
// once non-empty it never becomes empty again — trims keep at least the
// newest entry at-or-below the bound — so a reader that observes a chain
// hit for a key can rely on every later read hitting too.
type verChain[K comparable] struct {
	key  K
	vers []Version
}

// verStripe is one shard of the table: a mutex, a small chain slice scanned
// linearly, and a spill index past verSpill chains.
type verStripe[K comparable] struct {
	mu     sync.Mutex
	chains []verChain[K]
	idx    map[K]int // non-nil once len(chains) > verSpill
	_      [24]byte  // keep neighbouring stripe mutexes off one cache line
}

// versionTable is the striped per-key version store of one engine.
type versionTable[K comparable] struct {
	seed    maphash.Seed
	stripes [verStripes]verStripe[K]
}

func newVersionTable[K comparable]() *versionTable[K] {
	return &versionTable[K]{seed: maphash.MakeSeed()}
}

func (t *versionTable[K]) stripe(key K) *verStripe[K] {
	return &t.stripes[maphash.Comparable(t.seed, key)&(verStripes-1)]
}

// find returns the index of key's chain in s, or -1. Caller holds s.mu.
func (s *verStripe[K]) find(key K) int {
	if s.idx != nil {
		if i, ok := s.idx[key]; ok {
			return i
		}
		return -1
	}
	for i := range s.chains {
		if s.chains[i].key == key {
			return i
		}
	}
	return -1
}

// ensure returns the index of key's chain, creating it if absent. Caller
// holds s.mu.
func (s *verStripe[K]) ensure(key K) int {
	if i := s.find(key); i >= 0 {
		return i
	}
	s.chains = append(s.chains, verChain[K]{key: key})
	i := len(s.chains) - 1
	if s.idx != nil {
		s.idx[key] = i
	} else if len(s.chains) > verSpill {
		s.idx = make(map[K]int, 2*verSpill)
		for j := range s.chains {
			s.idx[s.chains[j].key] = j
		}
	}
	return i
}

// trim drops every entry older than the newest one at-or-below bound,
// returning how many were dropped. The newest entry at-or-below bound is
// what any current or future pin at sequence >= bound reads; everything
// older is unreachable. Caller holds the stripe mutex.
func (c *verChain[K]) trim(bound uint64) int {
	j := -1
	for i := range c.vers {
		if c.vers[i].Seq <= bound {
			j = i
		} else {
			break
		}
	}
	if j <= 0 {
		return 0
	}
	copy(c.vers, c.vers[j:])
	tail := len(c.vers) - j
	for i := tail; i < len(c.vers); i++ {
		c.vers[i] = Version{} // drop Val references
	}
	c.vers = c.vers[:tail]
	return j
}

// EnableVersions equips the engine with a version table, making it eligible
// for lock-free snapshot reads. Call at construction time, before the object
// is shared. Versioning stays dormant (one atomic load per mutation) until
// the system's first snapshot pin activates it.
func (o *Object[K]) EnableVersions() *Object[K] {
	o.vtab = newVersionTable[K]()
	return o
}

// DisableVersions removes the engine's version table. Configuration-time
// only (benchmark ablations); read-only transactions fall back to eager
// locking on this object afterwards.
func (o *Object[K]) DisableVersions() *Object[K] {
	o.vtab = nil
	return o
}

// Versioned reports whether the engine keeps version history.
func (o *Object[K]) Versioned() bool { return o.vtab != nil }

// VersioningLive reports whether this engine should record versions for
// mutations of tx: the table exists and the snapshot manager was active when
// tx's Atomic call began (the decision is latched at epoch entry — see
// stm.Tx.RecordsVersions). The latch, not the manager's live flag, is what
// specs must consult: a transaction that began before activation answers
// false for its entire run, so it can never pass NeedsSeed mid-flight and
// plant a floor derived from its own uncommitted earlier mutation. False
// means skip all version bookkeeping; the activation grace period (stm
// readonly.go) guarantees no pin can depend on what this transaction skips.
func (o *Object[K]) VersioningLive(tx *stm.Tx) bool {
	return o.vtab != nil && tx.RecordsVersions()
}

// NeedsSeed reports whether key's chain is empty, i.e. the caller's
// impending mutation must plant the pre-state floor first. Seeding is
// two-step (NeedsSeed, read pre-state, SeedVersion) so callers only pay the
// pre-state base read when a seed is actually due; the steps cannot race
// because only key's exclusive abstract-lock holder mutates or seeds it.
func (o *Object[K]) NeedsSeed(key K) bool {
	s := o.vtab.stripe(key)
	s.mu.Lock()
	i := s.find(key)
	empty := i < 0 || len(s.chains[i].vers) == 0
	s.mu.Unlock()
	return empty
}

// SeedVersion plants pre as key's sequence-0 floor entry if the chain is
// still empty. Must be called under key's abstract lock, before the base
// mutation it precedes: a reader that misses the chain and reads the base
// re-checks the chain afterwards, and that double-check is only conclusive
// if the seed landed before the base changed.
func (o *Object[K]) SeedVersion(tx *stm.Tx, key K, pre Version) {
	pre.Seq = 0
	s := o.vtab.stripe(key)
	s.mu.Lock()
	i := s.ensure(key)
	if len(s.chains[i].vers) == 0 {
		s.chains[i].vers = append(s.chains[i].vers, pre)
		s.mu.Unlock()
		tx.System().Snapshots().NoteRetained(1)
		return
	}
	s.mu.Unlock()
}

// RecordVersion appends key's post-op state to the transaction's pending
// version log for this engine (attaching a pooled log on first use). The
// record is published into the chain only at commit, under the commit
// sequence; aborts discard it.
func (o *Object[K]) RecordVersion(tx *stm.Tx, key K, v Version) {
	var vl *versionLog[K]
	if p := tx.VersionLookup(o); p != nil {
		vl = p.(*versionLog[K])
	} else {
		vl, _ = o.verPool.Get().(*versionLog[K])
		if vl == nil {
			vl = new(versionLog[K])
		}
		vl.obj = o
		tx.VersionAttach(o, vl)
	}
	vl.recs = append(vl.recs, versionRec[K]{key: key, ver: v})
}

// VersionAt returns key's newest version at-or-below seq. ok=false means the
// key has no chain (never mutated since versioning went live): the caller
// falls back to the base object, re-checks VersionAt, and — if the chain is
// still empty — trusts the base read, which the seed-before-mutate protocol
// makes sound (a mutation that could have torn the base read would have
// seeded the chain first, and the stripe mutex orders that seed before the
// re-check). A non-empty chain with no entry at-or-below seq cannot happen
// for a pinned reader (the floor entry is sequence 0 and trims never drop
// below a live pin); it reports ok=false defensively.
func (o *Object[K]) VersionAt(key K, seq uint64) (Version, bool) {
	s := o.vtab.stripe(key)
	s.mu.Lock()
	i := s.find(key)
	if i < 0 {
		s.mu.Unlock()
		return Version{}, false
	}
	vers := s.chains[i].vers
	for j := len(vers) - 1; j >= 0; j-- {
		if vers[j].Seq <= seq {
			v := vers[j]
			s.mu.Unlock()
			return v, true
		}
	}
	s.mu.Unlock()
	return Version{}, false
}

// publish lands one committed version in key's chain at seq and trims the
// chain to bound. Same-sequence re-publication (several records for one key
// in one transaction) keeps the last. Caller (FlushVersions) runs under the
// committing transaction's abstract locks.
func (t *versionTable[K]) publish(key K, v Version, seq, bound uint64, m *mvcc.Manager) {
	v.Seq = seq
	s := t.stripe(key)
	s.mu.Lock()
	i := s.ensure(key)
	c := &s.chains[i]
	if n := len(c.vers); n > 0 && c.vers[n-1].Seq == seq {
		c.vers[n-1] = v
		s.mu.Unlock()
		return
	}
	c.vers = append(c.vers, v)
	dropped := c.trim(bound)
	s.mu.Unlock()
	m.NoteRetained(1)
	if dropped > 0 {
		m.NoteReclaimed(dropped)
	}
}

// CompactVersions trims every chain to the manager's current trim bound,
// returning how many entries were reclaimed. Publications already trim the
// chains they touch; this sweep exists for idle objects after a long-lived
// pin closes (and for the GC tests).
func (o *Object[K]) CompactVersions(m *mvcc.Manager) int {
	if o.vtab == nil {
		return 0
	}
	bound := m.TrimBound()
	total := 0
	for si := range o.vtab.stripes {
		s := &o.vtab.stripes[si]
		s.mu.Lock()
		for ci := range s.chains {
			total += s.chains[ci].trim(bound)
		}
		s.mu.Unlock()
	}
	if total > 0 {
		m.NoteReclaimed(total)
	}
	return total
}

// VersionEntries counts live chain entries across the table (tests, memory
// accounting cross-checks).
func (o *Object[K]) VersionEntries() int {
	if o.vtab == nil {
		return 0
	}
	n := 0
	for si := range o.vtab.stripes {
		s := &o.vtab.stripes[si]
		s.mu.Lock()
		for ci := range s.chains {
			n += len(s.chains[ci].vers)
		}
		s.mu.Unlock()
	}
	return n
}

// VersionChainLen reports the length of key's chain (tests).
func (o *Object[K]) VersionChainLen(key K) int {
	if o.vtab == nil {
		return 0
	}
	s := o.vtab.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i := s.find(key); i >= 0 {
		return len(s.chains[i].vers)
	}
	return 0
}

// versionRec is one pending (key, post-op state) pair awaiting commit.
type versionRec[K comparable] struct {
	key K
	ver Version
}

// versionLog is the pending version log of one (transaction, object) pair;
// it implements stm.VersionPending and is pooled per object.
type versionLog[K comparable] struct {
	obj  *Object[K]
	recs []versionRec[K]
}

// Len reports the number of pending records (savepoint bookkeeping).
func (vl *versionLog[K]) Len() int { return len(vl.recs) }

// TruncateTo discards records at index n and later (nested child rollback).
func (vl *versionLog[K]) TruncateTo(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(vl.recs) {
		return
	}
	clear(vl.recs[n:])
	vl.recs = vl.recs[:n]
}

// FlushVersions publishes every pending record at seq. Runs at the commit
// point under the transaction's abstract locks; the trim bound is read once
// per flush (a concurrently registered pin only makes it conservative).
func (vl *versionLog[K]) FlushVersions(tx *stm.Tx, seq uint64) {
	m := tx.System().Snapshots()
	bound := m.TrimBound()
	for i := range vl.recs {
		vl.obj.vtab.publish(vl.recs[i].key, vl.recs[i].ver, seq, bound, m)
	}
}

// Recycle clears the log and returns it to its object's pool.
func (vl *versionLog[K]) Recycle() {
	vl.TruncateTo(0)
	vl.obj.verPool.Put(vl)
}

var _ stm.VersionPending = (*versionLog[int])(nil)
