package boost

import (
	"errors"
	"testing"
	"time"

	"tboost/internal/stm"
)

func newSys() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 25 * time.Millisecond})
}

var errAbort = errors.New("deliberate abort")

func TestDemandAndDisciplineStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{DemandNone.String(), "none"},
		{DemandKey.String(), "key"},
		{DemandRange.String(), "range"},
		{DemandShared.String(), "shared"},
		{DemandExcl.String(), "excl"},
		{Demand(99).String(), "demand(99)"},
		{Unsynced.String(), "unsynced"},
		{Keyed.String(), "keyed"},
		{Coarse.String(), "coarse"},
		{ReadWrite.String(), "readwrite"},
		{Ranged.String(), "ranged"},
		{Discipline(99).String(), "discipline(99)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestConstructorsReportDiscipline(t *testing.T) {
	if d := NewKeyed[int64]().Discipline(); d != Keyed {
		t.Errorf("NewKeyed discipline = %v", d)
	}
	if d := NewCoarse[string]().Discipline(); d != Coarse {
		t.Errorf("NewCoarse discipline = %v", d)
	}
	if d := NewReadWrite[int64]().Discipline(); d != ReadWrite {
		t.Errorf("NewReadWrite discipline = %v", d)
	}
	if d := NewRanged[int64]().Discipline(); d != Ranged {
		t.Errorf("NewRanged discipline = %v", d)
	}
	if d := NewUnsynced[int64]().Discipline(); d != Unsynced {
		t.Errorf("NewUnsynced discipline = %v", d)
	}
	if NewKeyed[int64]().KeyTable() == nil {
		t.Error("KeyTable() nil for keyed engine")
	}
	if NewCoarse[int64]().KeyTable() != nil {
		t.Error("KeyTable() non-nil for coarse engine")
	}
}

// TestInexpressibleDemandPanics: a spec asking a discipline for a demand it
// cannot realize is a programming error and must fail loudly, not silently
// under-lock.
func TestInexpressibleDemandPanics(t *testing.T) {
	cases := []struct {
		name string
		obj  *Object[int64]
		op   Op[int64]
	}{
		{"keyed-shared", NewKeyed[int64](), Shared[int64]()},
		{"keyed-excl", NewKeyed[int64](), Excl[int64]()},
		{"keyed-range", NewKeyed[int64](), Span[int64](1, 2)},
		{"rw-key", NewReadWrite[int64](), Key[int64](1)},
		{"rw-range", NewReadWrite[int64](), Span[int64](1, 2)},
		{"ranged-shared", NewRanged[int64](), Shared[int64]()},
		{"ranged-excl", NewRanged[int64](), Excl[int64]()},
		{"unsynced-key", NewUnsynced[int64](), Key[int64](1)},
	}
	sys := newSys()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: Acquire did not panic", c.name)
					}
				}()
				c.obj.Acquire(tx, c.op)
			})
		})
	}
}

// TestDemandNoneIsUniversal: DemandNone passes through every discipline
// without touching any lock — it is how pure inverse/disposable records flow
// through Apply.
func TestDemandNoneIsUniversal(t *testing.T) {
	sys := newSys()
	objs := []*Object[int64]{
		NewKeyed[int64](), NewCoarse[int64](), NewReadWrite[int64](),
		NewRanged[int64](), NewUnsynced[int64](),
	}
	ran := 0
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, o := range objs {
			o.Apply(tx, Op[int64]{OnCommit: func() { ran++ }})
		}
	})
	if ran != len(objs) {
		t.Fatalf("OnCommit disposables ran %d times, want %d", ran, len(objs))
	}
}

// TestInversesReplayInReverseOrder: Rule 3 requires the undo log to be
// replayed strictly last-in first-out; anything else can reconstruct a state
// the object never had.
func TestInversesReplayInReverseOrder(t *testing.T) {
	sys := newSys()
	obj := NewKeyed[int64]()
	var replay []int
	err := sys.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < 8; i++ {
			i := i
			obj.Apply(tx, Op[int64]{
				Demand:  DemandKey,
				Key:     int64(i),
				Inverse: func() { replay = append(replay, i) },
			})
		}
		return errAbort
	})
	if !errors.Is(err, errAbort) {
		t.Fatalf("err = %v", err)
	}
	if len(replay) != 8 {
		t.Fatalf("replayed %d inverses, want 8", len(replay))
	}
	for i, got := range replay {
		if want := 7 - i; got != want {
			t.Fatalf("replay[%d] = %d, want %d (order %v)", i, got, want, replay)
		}
	}
}

// TestCommitRunsNoInverses: on commit the undo log is discarded untouched.
func TestCommitRunsNoInverses(t *testing.T) {
	sys := newSys()
	obj := NewCoarse[int64]()
	inverses := 0
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		obj.Apply(tx, Op[int64]{Demand: DemandExcl, Inverse: func() { inverses++ }})
	})
	if inverses != 0 {
		t.Fatalf("commit ran %d inverses", inverses)
	}
}

// TestDisposablesMatchOutcome: OnCommit runs iff the transaction commits,
// OnAbort iff it aborts — never both, never neither.
func TestDisposablesMatchOutcome(t *testing.T) {
	sys := newSys()
	obj := NewUnsynced[int64]()
	for _, commit := range []bool{true, false} {
		commits, aborts := 0, 0
		err := sys.Atomic(func(tx *stm.Tx) error {
			obj.Apply(tx, Op[int64]{
				OnCommit: func() { commits++ },
				OnAbort:  func() { aborts++ },
			})
			if !commit {
				return errAbort
			}
			return nil
		})
		if commit {
			if err != nil || commits != 1 || aborts != 0 {
				t.Fatalf("commit: err=%v commits=%d aborts=%d", err, commits, aborts)
			}
		} else {
			if !errors.Is(err, errAbort) || commits != 0 || aborts != 1 {
				t.Fatalf("abort: err=%v commits=%d aborts=%d", err, commits, aborts)
			}
		}
	}
}

// TestOnAbortRunsAfterRollback: Rule 4 — a disposable deferred to abort must
// observe the fully rolled-back state, i.e. run after every inverse.
func TestOnAbortRunsAfterRollback(t *testing.T) {
	sys := newSys()
	obj := NewKeyed[int64]()
	var order []string
	_ = sys.Atomic(func(tx *stm.Tx) error {
		obj.Apply(tx, Op[int64]{
			Demand:  DemandKey,
			Key:     1,
			Inverse: func() { order = append(order, "inverse-1") },
			OnAbort: func() { order = append(order, "dispose-1") },
		})
		obj.Apply(tx, Op[int64]{
			Demand:  DemandKey,
			Key:     2,
			Inverse: func() { order = append(order, "inverse-2") },
			OnAbort: func() { order = append(order, "dispose-2") },
		})
		return errAbort
	})
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "inverse-2" || order[1] != "inverse-1" {
		t.Fatalf("inverses not reverse order: %v", order)
	}
	if order[2] == "inverse-1" || order[3] == "inverse-1" {
		t.Fatalf("an inverse ran after disposables: %v", order)
	}
}

// TestStringKeyedEngine: the kernel's key space is fully generic — a string
// keyed engine serializes same-key transactions and frees the key on commit.
func TestStringKeyedEngine(t *testing.T) {
	sys := newSys()
	obj := NewKeyed[string]()
	for i := 0; i < 20; i++ {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			obj.Acquire(tx, Key("alpha"))
			obj.Acquire(tx, Key("beta"))
			obj.Acquire(tx, Key("alpha")) // reentrant
		})
	}
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("sequential transactions aborted %d times", st.Aborts)
	}
}

// TestRangedPointIsDegenerateInterval: under the Ranged discipline, a
// DemandKey op locks [k, k] and therefore conflicts with a span covering k.
func TestRangedPointIsDegenerateInterval(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	obj := NewRanged[int64]()
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			obj.Acquire(tx, Span[int64](10, 20))
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		obj.Acquire(tx, Key[int64](15)) // inside [10, 20]: must conflict
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("point inside held span: err = %v, want timeout abort", err)
	}
	if err := sys.Atomic(func(tx *stm.Tx) error {
		obj.Acquire(tx, Key[int64](25)) // outside: must proceed
		return nil
	}); err != nil {
		t.Fatalf("point outside held span blocked: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPackageLevelHelpers: Inverse/OnCommit/OnAbort are the kernel's door to
// the runtime for objects with no lockable key space.
func TestPackageLevelHelpers(t *testing.T) {
	sys := newSys()
	var order []string
	_ = sys.Atomic(func(tx *stm.Tx) error {
		Inverse(tx, func() { order = append(order, "undo") })
		OnAbort(tx, func() { order = append(order, "abort-hook") })
		OnCommit(tx, func() { order = append(order, "commit-hook") })
		return errAbort
	})
	if len(order) != 2 || order[0] != "undo" || order[1] != "abort-hook" {
		t.Fatalf("order = %v", order)
	}
}
