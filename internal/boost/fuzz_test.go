package boost

import (
	"math/rand/v2"
	"testing"
	"time"

	"tboost/internal/stm"
)

// FuzzKernelReplay interprets fuzz input bytes as a descriptor sequence
// applied inside one transaction (2 bits: discipline-legal op shape, 6 bits:
// key) and checks the kernel's two ordering guarantees on every input:
//
//   - inverses replay in exact reverse logging order, and only on abort;
//   - disposables never run before the transaction's outcome is decided,
//     and the outcome picks exactly one of OnCommit/OnAbort per descriptor.
//
// The final input byte decides commit vs abort, so the corpus explores both
// outcomes. Run continuously with:
//
//	go test -fuzz FuzzKernelReplay ./internal/boost
func FuzzKernelReplay(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81, 0xc1, 0x00})
	f.Add([]byte{0x00, 0x40, 0x00, 0x40, 0x80, 0x01})
	seed := make([]byte, 64)
	r := rand.New(rand.NewPCG(2, 2))
	for i := range seed {
		seed[i] = byte(r.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		commit := ops[len(ops)-1]&1 == 0
		ops = ops[:len(ops)-1]

		sys := stm.NewSystem(stm.Config{LockTimeout: 25 * time.Millisecond})
		keyed := NewKeyed[int64]()
		unsynced := NewUnsynced[int64]()

		var (
			logged     []int // descriptor index, in logging order
			replayed   []int // descriptor index, in replay order
			committed  []int
			aborted    []int
			inBody     = true // flips false once the body returns
			nInverses  = 0
			nCommitFns = 0
			nAbortFns  = 0
		)
		err := sys.Atomic(func(tx *stm.Tx) error {
			for i, b := range ops {
				i := i
				k := int64(b & 0x3f)
				op := Op[int64]{}
				engine := unsynced
				switch b >> 6 {
				case 0: // keyed call with inverse
					engine = keyed
					op.Demand = DemandKey
					op.Key = k
					op.Inverse = func() { replayed = append(replayed, i) }
					logged = append(logged, i)
					nInverses++
				case 1: // keyed call, read-only (lock, no log)
					engine = keyed
					op.Demand = DemandKey
					op.Key = k
					op.OnCommit = func() {
						if inBody {
							t.Error("OnCommit ran before outcome")
						}
						committed = append(committed, i)
					}
					nCommitFns++
				case 2: // pure disposable pair, no lock
					op.OnCommit = func() {
						if inBody {
							t.Error("OnCommit ran before outcome")
						}
						committed = append(committed, i)
					}
					op.OnAbort = func() {
						if inBody {
							t.Error("OnAbort ran before outcome")
						}
						aborted = append(aborted, i)
					}
					nCommitFns++
					nAbortFns++
				case 3: // inverse + abort disposable: disposal must follow replay
					op.Inverse = func() {
						if len(aborted) != 0 {
							t.Error("inverse ran after an OnAbort disposable")
						}
						replayed = append(replayed, i)
					}
					op.OnAbort = func() {
						if inBody {
							t.Error("OnAbort ran before outcome")
						}
						aborted = append(aborted, i)
					}
					logged = append(logged, i)
					nInverses++
					nAbortFns++
				}
				engine.Apply(tx, op)
			}
			// No inverse or disposable may have run while the body was
			// still deciding the outcome.
			if len(replayed) != 0 || len(committed) != 0 || len(aborted) != 0 {
				t.Error("closure ran during transaction body")
			}
			inBody = false
			if commit {
				return nil
			}
			return errAbort
		})
		if commit {
			if err != nil {
				t.Fatalf("commit path errored: %v", err)
			}
			if len(replayed) != 0 {
				t.Fatalf("commit replayed %d inverses", len(replayed))
			}
			if len(aborted) != 0 {
				t.Fatalf("commit ran %d OnAbort disposables", len(aborted))
			}
			if len(committed) != nCommitFns {
				t.Fatalf("commit ran %d/%d OnCommit disposables", len(committed), nCommitFns)
			}
		} else {
			if err == nil {
				t.Fatal("abort path committed")
			}
			if len(committed) != 0 {
				t.Fatalf("abort ran %d OnCommit disposables", len(committed))
			}
			if len(aborted) != nAbortFns {
				t.Fatalf("abort ran %d/%d OnAbort disposables", len(aborted), nAbortFns)
			}
			if len(replayed) != nInverses {
				t.Fatalf("abort replayed %d/%d inverses", len(replayed), nInverses)
			}
			// The exact-reverse-order assertion: replay is the mirror image
			// of the logging sequence.
			for j, idx := range replayed {
				if want := logged[len(logged)-1-j]; idx != want {
					t.Fatalf("replay[%d] = descriptor %d, want %d (logged %v, replayed %v)",
						j, idx, want, logged, replayed)
				}
			}
		}
	})
}
