package boost

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

func adaptivePhase[K comparable](t *testing.T, o *Object[K]) string {
	t.Helper()
	s, ok := o.AdaptiveStats()
	if !ok {
		t.Fatal("AdaptiveStats not ok for adaptive engine")
	}
	return s.Phase
}

func TestAdaptiveStartsCoarse(t *testing.T) {
	sys := newSys()
	obj := NewAdaptive[int64](sys)
	if d := obj.Discipline(); d != Adaptive {
		t.Fatalf("Discipline() = %v, want Adaptive", d)
	}
	if p := adaptivePhase(t, obj); p != "coarse" {
		t.Fatalf("fresh adaptive phase = %q, want coarse", p)
	}
	if obj.KeyTable() == nil {
		t.Fatal("adaptive KeyTable() nil — the table must exist before promotion")
	}
	if obj.CoarseLock() == nil {
		t.Fatal("adaptive CoarseLock() nil")
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if d := obj.LatchedDiscipline(tx); d != Coarse {
			t.Fatalf("LatchedDiscipline before promotion = %v, want Coarse", d)
		}
	})
}

func TestForcePromoteAndDemote(t *testing.T) {
	sys := newSys()
	obj := NewAdaptive[int64](sys)
	if !obj.ForcePromote() {
		t.Fatal("ForcePromote returned false for adaptive engine")
	}
	if p := adaptivePhase(t, obj); p != "keyed" {
		t.Fatalf("phase after ForcePromote = %q, want keyed", p)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if d := obj.LatchedDiscipline(tx); d != Keyed {
			t.Fatalf("LatchedDiscipline after promotion = %v, want Keyed", d)
		}
		obj.Acquire(tx, Key[int64](7))
		if !obj.KeyTable().Get(7).HeldBy(tx) {
			t.Fatal("promoted engine did not lock through the key table")
		}
		if obj.CoarseLock().HeldBy(tx) {
			t.Fatal("promoted engine still locked the coarse lock")
		}
	})
	if !obj.ForceDemote() {
		t.Fatal("ForceDemote returned false")
	}
	if p := adaptivePhase(t, obj); p != "coarse" {
		t.Fatalf("phase after ForceDemote = %q, want coarse", p)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		obj.Acquire(tx, Key[int64](7))
		if !obj.CoarseLock().HeldBy(tx) {
			t.Fatal("demoted engine did not lock the coarse lock")
		}
		if obj.KeyTable().Get(7).HeldBy(tx) {
			t.Fatal("demoted engine still locked through the key table")
		}
	})
	s, _ := obj.AdaptiveStats()
	if s.Promotions != 1 || s.Demotions != 1 {
		t.Fatalf("promotions/demotions = %d/%d, want 1/1", s.Promotions, s.Demotions)
	}
	// Idempotent: forcing the current mode is a no-op, not another migration.
	obj.ForceDemote()
	if s, _ := obj.AdaptiveStats(); s.Demotions != 1 {
		t.Fatalf("no-op ForceDemote counted a migration: %d", s.Demotions)
	}
}

func TestForceHooksFalseForStaticEngines(t *testing.T) {
	if NewKeyed[int64]().ForcePromote() {
		t.Error("ForcePromote true for static keyed engine")
	}
	if NewCoarse[int64]().ForceDemote() {
		t.Error("ForceDemote true for static coarse engine")
	}
	if _, ok := NewKeyed[int64]().AdaptiveStats(); ok {
		t.Error("AdaptiveStats ok for static engine")
	}
}

func TestAdaptiveForeignSystemPanics(t *testing.T) {
	obj := NewAdaptive[int64](newSys())
	other := newSys()
	stm.MustAtomicOn(other, func(tx *stm.Tx) {
		defer func() {
			if recover() == nil {
				t.Error("acquire from a foreign system did not panic")
			}
		}()
		obj.Acquire(tx, Key[int64](1))
	})
}

func TestAdaptiveInexpressibleDemandPanics(t *testing.T) {
	sys := newSys()
	obj := NewAdaptive[int64](sys)
	for _, op := range []Op[int64]{Shared[int64](), Excl[int64](), Span[int64](1, 2)} {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			defer func() {
				if recover() == nil {
					t.Errorf("demand %v: Acquire did not panic", op.Demand)
				}
			}()
			obj.Acquire(tx, op)
		})
	}
}

// TestMidTxPromotionKeepsFootprintWhole is the regression test for the
// latched-view contract: a migration that reaches bridge mode while a
// transaction is live must not split that transaction's lock footprint across
// the coarse lock and the key table. The transaction latched Coarse at its
// first demand, so every later demand — issued while the object is publicly
// in bridge mode — must land on the coarse lock and only the coarse lock.
func TestMidTxPromotionKeepsFootprintWhole(t *testing.T) {
	sys := newSys()
	obj := NewAdaptive[int64](sys)
	firstAcquired := make(chan struct{})
	bridgeUp := make(chan struct{})
	promoted := make(chan struct{})

	go func() {
		<-firstAcquired
		obj.ForcePromote() // blocks in the drain barrier until the tx below returns
		close(promoted)
	}()

	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		obj.Acquire(tx, Key[int64](1))
		close(firstAcquired)
		// Wait for the migration goroutine to publish bridge mode. It cannot
		// go further: the drain barrier waits for this very call.
		go func() {
			for {
				if s, _ := obj.AdaptiveStats(); s.Phase == "bridge" {
					close(bridgeUp)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
		<-bridgeUp
		// Second demand under a published bridge: the latch must keep the
		// whole footprint coarse.
		obj.Acquire(tx, Key[int64](2))
		if d := obj.LatchedDiscipline(tx); d != Coarse {
			t.Errorf("latched discipline flipped mid-tx: %v", d)
		}
		if !obj.CoarseLock().HeldBy(tx) {
			t.Error("coarse lock not held after second demand")
		}
		if obj.KeyTable().Get(1).HeldBy(tx) || obj.KeyTable().Get(2).HeldBy(tx) {
			t.Error("mid-tx promotion split the footprint into the key table")
		}
	})

	<-promoted
	if p := adaptivePhase(t, obj); p != "keyed" {
		t.Fatalf("phase after drain = %q, want keyed", p)
	}
	// And the drain barrier held: promotion completed only after the
	// transaction returned, so the next transaction is cleanly keyed.
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		obj.Acquire(tx, Key[int64](1))
		if obj.CoarseLock().HeldBy(tx) {
			t.Error("post-promotion tx acquired the coarse lock")
		}
		if !obj.KeyTable().Get(1).HeldBy(tx) {
			t.Error("post-promotion tx missing its key lock")
		}
	})
}

// TestBridgeTxHoldsBothLocks: a transaction whose first demand lands during
// the bridge window must hold the coarse lock AND the per-key lock — that
// double footprint is what lets it conflict correctly with both terminal
// populations.
func TestBridgeTxHoldsBothLocks(t *testing.T) {
	sys := newSys()
	obj := NewAdaptive[int64](sys)
	holderIn := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})

	// Park a transaction holding an unrelated KEYED footprint? No — to pin
	// bridge mode open we need a live call from the pre-bridge generation.
	go func() {
		defer close(done)
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			obj.Acquire(tx, Key[int64](99))
			close(holderIn)
			<-release
		})
	}()
	<-holderIn

	promoted := make(chan struct{})
	go func() {
		obj.ForcePromote()
		close(promoted)
	}()
	for {
		if s, _ := obj.AdaptiveStats(); s.Phase == "bridge" {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}

	// A fresh transaction now latches Bridge (LatchedDiscipline latches as a
	// side effect, before any blocking). Its key differs from the holder's,
	// but bridge mode acquires coarse first — which the holder owns — so its
	// Acquire waits; release the holder only after the latch is taken so a
	// retry cannot re-latch the terminal keyed mode.
	var sawBoth atomic.Bool
	var latchOnce sync.Once
	latched := make(chan struct{})
	fresh := make(chan struct{})
	go func() {
		defer close(fresh)
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			if d := obj.LatchedDiscipline(tx); d != Coarse {
				t.Errorf("bridge window latched as %v, want Coarse view", d)
			}
			latchOnce.Do(func() { close(latched) })
			obj.Acquire(tx, Key[int64](1))
			both := obj.CoarseLock().HeldBy(tx) && obj.KeyTable().Get(1).HeldBy(tx)
			sawBoth.Store(both)
		})
	}()
	<-latched
	close(release)
	<-done
	<-fresh
	<-promoted
	if !sawBoth.Load() {
		t.Fatal("bridge-latched transaction did not hold both the coarse lock and its key lock")
	}
}

// TestAutoPromotionUnderContention: with aggressive thresholds, genuine
// blocking on the coarse lock promotes the object without any manual hook.
func TestAutoPromotionUnderContention(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	obj := NewAdaptiveConfig[int64](sys, AdaptiveConfig{
		PromoteConflicts: 2,
		PromoteWait:      time.Nanosecond,
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				stm.MustAtomicOn(sys, func(tx *stm.Tx) {
					obj.Acquire(tx, Key[int64](int64(i%4)))
					time.Sleep(20 * time.Microsecond)
				})
				if s, _ := obj.AdaptiveStats(); s.Promotions > 0 {
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, _ := obj.AdaptiveStats()
		if s.Promotions > 0 && s.Phase == "keyed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion under contention: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	if st := sys.Stats(); st.Promotions < 1 {
		t.Fatalf("system stats did not count the promotion: %+v", st)
	}
}

// TestGovernorDemotesAfterQuiet: with DemoteAfter set, a promoted object that
// stops conflicting returns to coarse after the hysteresis windows.
func TestGovernorDemotesAfterQuiet(t *testing.T) {
	sys := newSys()
	obj := NewAdaptiveConfig[int64](sys, AdaptiveConfig{
		DemoteAfter:   2 * time.Millisecond,
		DemoteWindows: 2,
	})
	obj.ForcePromote() // starts the governor (DemoteAfter > 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, _ := obj.AdaptiveStats()
		if s.Demotions > 0 && s.Phase == "coarse" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("governor never demoted a quiet object: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	if st := sys.Stats(); st.Demotions < 1 {
		t.Fatalf("system stats did not count the demotion: %+v", st)
	}
}

// TestAdaptiveUndoAndVersionsSurviveMigration: inverse logs, disposables, and
// version seeding keep their contracts across a forced promotion between
// transactions.
func TestAdaptiveUndoAndVersionsSurviveMigration(t *testing.T) {
	sys := newSys()
	obj := NewAdaptive[int64](sys).EnableVersions()
	for round := 0; round < 2; round++ {
		inverses := 0
		_ = sys.Atomic(func(tx *stm.Tx) error {
			obj.Apply(tx, Op[int64]{
				Demand:  DemandKey,
				Key:     int64(round),
				Inverse: func() { inverses++ },
			})
			return errAbort
		})
		if inverses != 1 {
			t.Fatalf("round %d: %d inverses, want 1", round, inverses)
		}
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			obj.Apply(tx, Op[int64]{Demand: DemandKey, Key: int64(round)})
		})
		if round == 0 {
			obj.ForcePromote()
		}
	}
}
