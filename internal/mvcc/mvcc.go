// Package mvcc is the snapshot manager of the multi-version read path: a
// global commit sequence clock, a registry of pinned snapshot sequence
// numbers, and the retention accounting that bounds per-key version history.
//
// The design is the classic seqno/snapshot-pin idiom of LSM storage engines,
// transplanted onto the boosting kernel:
//
//   - Committing transactions that recorded versioned mutations draw a
//     sequence number from the clock *while still holding their abstract
//     locks*, so sequence order equals serialization order (and, with a WAL
//     configured, log append order — both happen in the same locked region).
//   - The clock splits allocation from publication: Begin hands out the next
//     sequence, Publish makes it visible only after the transaction's version
//     records have landed in the per-key chains, and only in sequence order.
//     A reader that pins the visible sequence therefore never observes a
//     half-flushed commit.
//   - Read-only transactions pin the visible sequence for their duration and
//     read the newest version at-or-below their pin; version garbage
//     collection reclaims chain entries strictly below the trim bound
//     (min of the oldest pin and the visible sequence).
//
// The manager itself is dependency-free; internal/stm owns one per System
// and internal/boost consults it when appending and trimming version chains.
// A versioned object must be driven by transactions of a single System: pins
// registered with one manager do not protect chains trimmed under another.
package mvcc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// NoPin is the trim bound reported when no snapshot is pinned: every version
// below the currently visible sequence is reclaimable (the newest entry per
// key is always retained).
const NoPin = ^uint64(0)

// Manager is the snapshot manager for one transaction System. All methods
// are safe for concurrent use.
type Manager struct {
	// next is the allocation clock; visible trails it, advancing in
	// sequence order as committers publish. Sequence 0 means "before all
	// versioned history" and is used for chain floor (seed) entries.
	next    atomic.Uint64
	visible atomic.Uint64

	// active is the one-way versioning switch: writers record versions only
	// once the first snapshot pin has activated the manager (after an epoch
	// grace period drained the transactions that predate it — see
	// stm.System). Until then the whole multi-version path costs writers a
	// single atomic load.
	active atomic.Bool

	mu     sync.Mutex
	pins   map[uint64]int // pinned sequence → pin count
	oldest uint64         // min key of pins; valid while len(pins) > 0

	retained  atomic.Int64  // live version-chain entries across all tables
	reclaimed atomic.Uint64 // entries trimmed since the manager was created
}

// NewManager returns an empty manager: sequence clock at zero, no pins,
// versioning inactive.
func NewManager() *Manager {
	return &Manager{pins: make(map[uint64]int)}
}

// Active reports whether versioning has been switched on (a snapshot pin has
// existed at some point). Writers consult it before paying any version
// bookkeeping; it is monotone, so a false answer can never invalidate a pin
// taken later — activation drains the transactions that answered false.
func (m *Manager) Active() bool { return m.active.Load() }

// Activate flips the one-way versioning switch, reporting whether this call
// performed the transition. The caller (stm's activation path) must complete
// its grace period — waiting out every transaction that may have skipped
// version recording — before registering the first pin.
func (m *Manager) Activate() bool {
	return m.active.CompareAndSwap(false, true)
}

// Begin allocates the next commit sequence number. Call while holding the
// committing transaction's abstract locks, after the point of no return:
// between Begin and Publish only in-memory version flushing may run.
func (m *Manager) Begin() uint64 { return m.next.Add(1) }

// Publish makes seq visible to new pins. Publication is strictly in-order:
// Publish(seq) waits until seq-1 is visible, so a reader pinning the visible
// sequence observes a prefix-closed set of commits with every version record
// already in place. The wait is a bounded spin — predecessors only flush
// in-memory version records between their Begin and Publish, and every Begin
// is paired with a Publish even when a flush panics (stm defers the publish),
// so the spin can never wedge on an abandoned sequence.
func (m *Manager) Publish(seq uint64) {
	for !m.visible.CompareAndSwap(seq-1, seq) {
		runtime.Gosched()
	}
}

// Visible returns the newest published sequence number.
func (m *Manager) Visible() uint64 { return m.visible.Load() }

// Pin registers a snapshot at the current visible sequence and returns it.
// Every Pin must be matched by exactly one Unpin with the returned sequence.
// The visible read and the registration happen under one mutex acquisition,
// ordered against TrimBound: a trim computed after Pin returns can never
// reclaim the version a pinned reader needs.
func (m *Manager) Pin() uint64 {
	m.mu.Lock()
	seq := m.visible.Load()
	if len(m.pins) == 0 || seq < m.oldest {
		m.oldest = seq
	}
	m.pins[seq]++
	m.mu.Unlock()
	return seq
}

// PinAtLeast registers a pin at the current visible sequence, first waiting
// (a bounded spin — publication is in-order and never abandons a sequence)
// until the visible clock has reached at least seq. Cross-System read-only
// spans use it for matched-sequence pinning: a coordinator that knows a
// span's commit sequence on this participant can guarantee its pin covers
// that span, even if it races the participant's publication. Like Pin, the
// returned sequence must be released with exactly one Unpin.
func (m *Manager) PinAtLeast(seq uint64) uint64 {
	for {
		m.mu.Lock()
		vis := m.visible.Load()
		if vis >= seq {
			if len(m.pins) == 0 || vis < m.oldest {
				m.oldest = vis
			}
			m.pins[vis]++
			m.mu.Unlock()
			return vis
		}
		m.mu.Unlock()
		runtime.Gosched()
	}
}

// Unpin releases one pin previously returned by Pin. Reclamation is lazy:
// chain entries freed by this release are trimmed by subsequent version
// appends (or an explicit compaction sweep), not here.
func (m *Manager) Unpin(seq uint64) {
	m.mu.Lock()
	n := m.pins[seq] - 1
	if n > 0 {
		m.pins[seq] = n
	} else {
		delete(m.pins, seq)
		if seq == m.oldest && len(m.pins) > 0 {
			min := NoPin
			for p := range m.pins {
				if p < min {
					min = p
				}
			}
			m.oldest = min
		}
	}
	m.mu.Unlock()
}

// OldestPin returns the smallest pinned sequence, or NoPin when no snapshot
// is pinned.
func (m *Manager) OldestPin() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pins) == 0 {
		return NoPin
	}
	return m.oldest
}

// ActivePins reports how many pins are currently registered (counting
// multiplicity).
func (m *Manager) ActivePins() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.pins {
		n += c
	}
	return n
}

// TrimBound returns the sequence below which chain entries may be reclaimed:
// the newest entry at-or-below the bound must be kept per key (it is the
// state some live or future pin reads); everything older goes. The bound is
// min(oldest pin, visible): capping at the visible sequence protects a
// reader that pins concurrently with a committer's trim — any future pin is
// at least the visible sequence the trim saw, so the entries it needs
// survive. Taken under the pin mutex so it is ordered against Pin.
func (m *Manager) TrimBound() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	bound := m.visible.Load()
	if len(m.pins) > 0 && m.oldest < bound {
		bound = m.oldest
	}
	return bound
}

// NoteRetained adds n to the live version-entry gauge. Version tables call
// it when appending chain entries.
func (m *Manager) NoteRetained(n int) { m.retained.Add(int64(n)) }

// NoteReclaimed moves n entries from the live gauge to the reclaimed
// counter. Version tables call it when trimming.
func (m *Manager) NoteReclaimed(n int) {
	m.retained.Add(-int64(n))
	m.reclaimed.Add(uint64(n))
}

// Stats is a point-in-time view of the manager, the visible face of version
// retention: a long-lived pin shows up as a growing VersionsRetained gauge,
// and reclamation after its release shows up in VersionsReclaimed.
type Stats struct {
	Visible           uint64 // newest published commit sequence
	ActivePins        int    // registered pins, counting multiplicity
	OldestPin         uint64 // smallest pinned sequence; NoPin when none
	VersionsRetained  int64  // live version-chain entries across all tables
	VersionsReclaimed uint64 // entries trimmed since creation
	Active            bool   // versioning switched on
}

// Stats returns the manager's current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	oldest := NoPin
	if len(m.pins) > 0 {
		oldest = m.oldest
	}
	pins := 0
	for _, c := range m.pins {
		pins += c
	}
	m.mu.Unlock()
	return Stats{
		Visible:           m.visible.Load(),
		ActivePins:        pins,
		OldestPin:         oldest,
		VersionsRetained:  m.retained.Load(),
		VersionsReclaimed: m.reclaimed.Load(),
		Active:            m.active.Load(),
	}
}
