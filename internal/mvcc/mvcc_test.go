package mvcc

import (
	"sync"
	"testing"
)

func TestClockAllocatePublish(t *testing.T) {
	m := NewManager()
	if got := m.Visible(); got != 0 {
		t.Fatalf("fresh manager visible = %d, want 0", got)
	}
	s1 := m.Begin()
	s2 := m.Begin()
	if s1 != 1 || s2 != 2 {
		t.Fatalf("Begin sequence = %d, %d; want 1, 2", s1, s2)
	}
	// Publication is in-order: publish 2 from a goroutine, it must wait
	// until 1 is published.
	done := make(chan struct{})
	go func() {
		m.Publish(s2)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Publish(2) completed before Publish(1)")
	default:
	}
	m.Publish(s1)
	<-done
	if got := m.Visible(); got != 2 {
		t.Fatalf("visible = %d, want 2", got)
	}
}

func TestPinUnpinOldest(t *testing.T) {
	m := NewManager()
	if got := m.OldestPin(); got != NoPin {
		t.Fatalf("OldestPin with no pins = %d, want NoPin", got)
	}
	m.Publish(m.Begin()) // visible = 1
	p1 := m.Pin()
	if p1 != 1 {
		t.Fatalf("pin = %d, want 1", p1)
	}
	m.Publish(m.Begin()) // visible = 2
	p2 := m.Pin()
	if p2 != 2 {
		t.Fatalf("pin = %d, want 2", p2)
	}
	if got := m.OldestPin(); got != 1 {
		t.Fatalf("OldestPin = %d, want 1", got)
	}
	if got := m.ActivePins(); got != 2 {
		t.Fatalf("ActivePins = %d, want 2", got)
	}
	m.Unpin(p1)
	if got := m.OldestPin(); got != 2 {
		t.Fatalf("OldestPin after unpin = %d, want 2", got)
	}
	m.Unpin(p2)
	if got := m.OldestPin(); got != NoPin {
		t.Fatalf("OldestPin after all unpins = %d, want NoPin", got)
	}
}

func TestPinRefcount(t *testing.T) {
	m := NewManager()
	m.Publish(m.Begin())
	a := m.Pin()
	b := m.Pin()
	if a != b {
		t.Fatalf("pins at same visible differ: %d vs %d", a, b)
	}
	m.Unpin(a)
	if got := m.OldestPin(); got != a {
		t.Fatalf("OldestPin = %d after releasing one of two pins, want %d", got, a)
	}
	m.Unpin(b)
	if got := m.OldestPin(); got != NoPin {
		t.Fatalf("OldestPin = %d, want NoPin", got)
	}
}

func TestTrimBound(t *testing.T) {
	m := NewManager()
	m.Publish(m.Begin())
	m.Publish(m.Begin())
	m.Publish(m.Begin()) // visible = 3
	if got := m.TrimBound(); got != 3 {
		t.Fatalf("TrimBound with no pins = %d, want visible 3", got)
	}
	p := m.Pin() // 3
	m.Publish(m.Begin())
	m.Publish(m.Begin()) // visible = 5
	if got := m.TrimBound(); got != 3 {
		t.Fatalf("TrimBound with pin at 3 = %d, want 3", got)
	}
	m.Unpin(p)
	if got := m.TrimBound(); got != 5 {
		t.Fatalf("TrimBound after unpin = %d, want 5", got)
	}
}

func TestActivateOneWay(t *testing.T) {
	m := NewManager()
	if m.Active() {
		t.Fatal("fresh manager active")
	}
	if !m.Activate() {
		t.Fatal("first Activate did not transition")
	}
	if m.Activate() {
		t.Fatal("second Activate claimed the transition")
	}
	if !m.Active() {
		t.Fatal("manager not active after Activate")
	}
}

func TestRetentionCounters(t *testing.T) {
	m := NewManager()
	m.NoteRetained(5)
	m.NoteReclaimed(3)
	st := m.Stats()
	if st.VersionsRetained != 2 || st.VersionsReclaimed != 3 {
		t.Fatalf("retained/reclaimed = %d/%d, want 2/3", st.VersionsRetained, st.VersionsReclaimed)
	}
}

// TestConcurrentPinsAndPublishes hammers the pin registry while the clock
// advances; run under -race this checks the mutex discipline, and the
// invariant checked is that every pin lands at-or-below the visible sequence
// it could have observed afterwards.
func TestConcurrentPinsAndPublishes(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			m.Publish(m.Begin())
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := m.Pin()
				if vis := m.Visible(); p > vis {
					t.Errorf("pin %d above visible %d", p, vis)
					m.Unpin(p)
					return
				}
				if b := m.TrimBound(); b > p {
					t.Errorf("trim bound %d above live pin %d", b, p)
					m.Unpin(p)
					return
				}
				m.Unpin(p)
			}
		}()
	}
	wg.Wait()
	if got := m.Visible(); got != 2000 {
		t.Fatalf("visible = %d, want 2000", got)
	}
}
