// Package deque implements a bounded blocking double-ended queue, the Go
// analogue of java.util.concurrent.LinkedBlockingDeque that the paper's
// pipeline example (§3.3) uses as the linearizable base for its boosted
// BlockingQueue.
//
// The deque exists because BlockingQueue itself provides no inverses: a
// transactional offer() maps to the base offerLast(), whose inverse is
// takeLast(); a transactional take() maps to takeFirst(), whose inverse is
// offerFirst(). Both ends must therefore be addressable.
package deque

import (
	"errors"
	"sync"
	"time"
)

// ErrTimeout is returned by the timed operations when the deadline expires
// before the operation can proceed.
var ErrTimeout = errors.New("deque: operation timed out")

// ErrFull is returned by TryOffer* when the deque is at capacity.
var ErrFull = errors.New("deque: full")

// ErrEmpty is returned by TryTake* when the deque is empty.
var ErrEmpty = errors.New("deque: empty")

// Deque is a bounded blocking double-ended queue. All methods are safe for
// concurrent use. Create with New.
type Deque[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []T // ring buffer
	head     int // index of first item
	size     int
	capacity int
}

// New returns an empty deque with the given capacity (minimum 1).
func New[T any](capacity int) *Deque[T] {
	if capacity < 1 {
		capacity = 1
	}
	d := &Deque[T]{
		items:    make([]T, capacity),
		capacity: capacity,
	}
	d.notFull = sync.NewCond(&d.mu)
	d.notEmpty = sync.NewCond(&d.mu)
	return d
}

// Len returns the number of items currently queued.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Cap returns the capacity.
func (d *Deque[T]) Cap() int { return d.capacity }

func (d *Deque[T]) idx(i int) int {
	return (d.head + i + d.capacity) % d.capacity
}

// locked-section primitives

func (d *Deque[T]) pushFirst(v T) {
	d.head = d.idx(-1)
	d.items[d.head] = v
	d.size++
	d.notEmpty.Broadcast()
}

func (d *Deque[T]) pushLast(v T) {
	d.items[d.idx(d.size)] = v
	d.size++
	d.notEmpty.Broadcast()
}

func (d *Deque[T]) popFirst() T {
	v := d.items[d.head]
	var zero T
	d.items[d.head] = zero
	d.head = d.idx(1)
	d.size--
	d.notFull.Broadcast()
	return v
}

func (d *Deque[T]) popLast() T {
	i := d.idx(d.size - 1)
	v := d.items[i]
	var zero T
	d.items[i] = zero
	d.size--
	d.notFull.Broadcast()
	return v
}

// OfferFirst enqueues v at the front, blocking while the deque is full.
func (d *Deque[T]) OfferFirst(v T) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.size == d.capacity {
		d.notFull.Wait()
	}
	d.pushFirst(v)
}

// OfferLast enqueues v at the back, blocking while the deque is full.
func (d *Deque[T]) OfferLast(v T) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.size == d.capacity {
		d.notFull.Wait()
	}
	d.pushLast(v)
}

// TakeFirst dequeues from the front, blocking while the deque is empty.
func (d *Deque[T]) TakeFirst() T {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.size == 0 {
		d.notEmpty.Wait()
	}
	return d.popFirst()
}

// TakeLast dequeues from the back, blocking while the deque is empty.
func (d *Deque[T]) TakeLast() T {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.size == 0 {
		d.notEmpty.Wait()
	}
	return d.popLast()
}

// TryOfferFirst enqueues at the front without blocking; ErrFull on overflow.
func (d *Deque[T]) TryOfferFirst(v T) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.size == d.capacity {
		return ErrFull
	}
	d.pushFirst(v)
	return nil
}

// TryOfferLast enqueues at the back without blocking; ErrFull on overflow.
func (d *Deque[T]) TryOfferLast(v T) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.size == d.capacity {
		return ErrFull
	}
	d.pushLast(v)
	return nil
}

// TryTakeFirst dequeues from the front without blocking; ErrEmpty if empty.
func (d *Deque[T]) TryTakeFirst() (T, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.size == 0 {
		var zero T
		return zero, ErrEmpty
	}
	return d.popFirst(), nil
}

// TryTakeLast dequeues from the back without blocking; ErrEmpty if empty.
func (d *Deque[T]) TryTakeLast() (T, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.size == 0 {
		var zero T
		return zero, ErrEmpty
	}
	return d.popLast(), nil
}

// OfferLastTimeout enqueues at the back, waiting up to timeout for space.
func (d *Deque[T]) OfferLastTimeout(v T, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.size == d.capacity {
		if !d.waitUntil(d.notFull, deadline) {
			return ErrTimeout
		}
	}
	d.pushLast(v)
	return nil
}

// TakeFirstTimeout dequeues from the front, waiting up to timeout for an item.
func (d *Deque[T]) TakeFirstTimeout(timeout time.Duration) (T, error) {
	deadline := time.Now().Add(timeout)
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.size == 0 {
		if !d.waitUntil(d.notEmpty, deadline) {
			var zero T
			return zero, ErrTimeout
		}
	}
	return d.popFirst(), nil
}

// waitUntil waits on cond with a deadline, returning false once the deadline
// has passed. sync.Cond has no timed wait, so a timer goroutine broadcasts
// at the deadline.
func (d *Deque[T]) waitUntil(cond *sync.Cond, deadline time.Time) bool {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false
	}
	timer := time.AfterFunc(remaining, func() {
		d.mu.Lock()
		cond.Broadcast()
		d.mu.Unlock()
	})
	cond.Wait()
	timer.Stop()
	return time.Now().Before(deadline)
}

// Snapshot returns the current contents front to back. For tests.
func (d *Deque[T]) Snapshot() []T {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]T, d.size)
	for i := 0; i < d.size; i++ {
		out[i] = d.items[d.idx(i)]
	}
	return out
}
