package deque

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	d := New[int](8)
	for i := 0; i < 5; i++ {
		d.OfferLast(i)
	}
	for i := 0; i < 5; i++ {
		if v := d.TakeFirst(); v != i {
			t.Fatalf("TakeFirst = %d, want %d", v, i)
		}
	}
}

func TestLIFOFromBack(t *testing.T) {
	d := New[int](8)
	for i := 0; i < 5; i++ {
		d.OfferLast(i)
	}
	for i := 4; i >= 0; i-- {
		if v := d.TakeLast(); v != i {
			t.Fatalf("TakeLast = %d, want %d", v, i)
		}
	}
}

func TestOfferFirstReordersFront(t *testing.T) {
	d := New[int](8)
	d.OfferLast(1)
	d.OfferFirst(0)
	d.OfferLast(2)
	got := d.Snapshot()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestCapacityMinimumOne(t *testing.T) {
	d := New[int](0)
	if d.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", d.Cap())
	}
}

func TestTryOperations(t *testing.T) {
	d := New[int](2)
	if err := d.TryOfferLast(1); err != nil {
		t.Fatal(err)
	}
	if err := d.TryOfferFirst(0); err != nil {
		t.Fatal(err)
	}
	if err := d.TryOfferLast(2); !errors.Is(err, ErrFull) {
		t.Fatalf("TryOfferLast on full = %v, want ErrFull", err)
	}
	if err := d.TryOfferFirst(9); !errors.Is(err, ErrFull) {
		t.Fatalf("TryOfferFirst on full = %v, want ErrFull", err)
	}
	if v, err := d.TryTakeFirst(); err != nil || v != 0 {
		t.Fatalf("TryTakeFirst = %d,%v", v, err)
	}
	if v, err := d.TryTakeLast(); err != nil || v != 1 {
		t.Fatalf("TryTakeLast = %d,%v", v, err)
	}
	if _, err := d.TryTakeFirst(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("TryTakeFirst on empty = %v, want ErrEmpty", err)
	}
	if _, err := d.TryTakeLast(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("TryTakeLast on empty = %v, want ErrEmpty", err)
	}
}

func TestBlockingOfferUnblocksOnTake(t *testing.T) {
	d := New[int](1)
	d.OfferLast(1)
	done := make(chan struct{})
	go func() {
		d.OfferLast(2) // blocks until a take
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("OfferLast did not block on full deque")
	case <-time.After(20 * time.Millisecond):
	}
	if v := d.TakeFirst(); v != 1 {
		t.Fatalf("TakeFirst = %d", v)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("OfferLast never unblocked")
	}
	if v := d.TakeFirst(); v != 2 {
		t.Fatalf("TakeFirst = %d", v)
	}
}

func TestBlockingTakeUnblocksOnOffer(t *testing.T) {
	d := New[int](1)
	got := make(chan int)
	go func() { got <- d.TakeFirst() }()
	select {
	case v := <-got:
		t.Fatalf("TakeFirst returned %d from empty deque", v)
	case <-time.After(20 * time.Millisecond):
	}
	d.OfferLast(7)
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("TakeFirst = %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TakeFirst never unblocked")
	}
}

func TestTimeoutOperations(t *testing.T) {
	d := New[int](1)
	if _, err := d.TakeFirstTimeout(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("TakeFirstTimeout on empty = %v, want ErrTimeout", err)
	}
	d.OfferLast(1)
	if err := d.OfferLastTimeout(2, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("OfferLastTimeout on full = %v, want ErrTimeout", err)
	}
	if v, err := d.TakeFirstTimeout(time.Second); err != nil || v != 1 {
		t.Fatalf("TakeFirstTimeout = %d,%v", v, err)
	}
	if err := d.OfferLastTimeout(3, time.Second); err != nil {
		t.Fatalf("OfferLastTimeout with room = %v", err)
	}
}

func TestWrapAroundRing(t *testing.T) {
	d := New[int](3)
	next := 0
	for round := 0; round < 50; round++ {
		d.OfferLast(next)
		next++
		d.OfferLast(next)
		next++
		if v := d.TakeFirst(); v != next-2 {
			t.Fatalf("round %d: got %d, want %d", round, v, next-2)
		}
		if v := d.TakeFirst(); v != next-1 {
			t.Fatalf("round %d: got %d, want %d", round, v, next-1)
		}
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	d := New[int](16)
	const producers = 4
	const consumers = 4
	const perP = 2000
	var wg sync.WaitGroup
	sums := make(chan int, consumers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				d.OfferLast(p*perP + i)
			}
		}()
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			sum := 0
			for i := 0; i < producers*perP/consumers; i++ {
				sum += d.TakeFirst()
			}
			sums <- sum
		}()
	}
	wg.Wait()
	cwg.Wait()
	close(sums)
	total := 0
	for s := range sums {
		total += s
	}
	n := producers * perP
	want := n * (n - 1) / 2
	if total != want {
		t.Fatalf("sum of consumed = %d, want %d (items lost or duplicated)", total, want)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d at end", d.Len())
	}
}

func TestConcurrentBothEnds(t *testing.T) {
	d := New[int](64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(200*time.Millisecond, func() { close(stop) })
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r.IntN(4) {
				case 0:
					d.TryOfferFirst(w)
				case 1:
					d.TryOfferLast(w)
				case 2:
					d.TryTakeFirst()
				default:
					d.TryTakeLast()
				}
			}
		}()
	}
	wg.Wait()
	if n := d.Len(); n < 0 || n > d.Cap() {
		t.Fatalf("Len = %d out of bounds", n)
	}
}
