// Package faultpoint is a failpoint registry for chaos-testing the boosting
// runtime. The recovery machinery the paper depends on — timed abstract-lock
// acquisition, inverse-operation undo logs, post-abort disposables,
// validation — runs rarely in healthy workloads, so the rarest paths are the
// least exercised. Failpoints let tests and the chaos harness force those
// paths on demand: a named site woven into a hot path consults the registry
// and, when a trigger is armed, injects a delay, a doom, a forced lock
// timeout, or a forced validation failure.
//
// The registry is process-global (fault schedules span packages) and
// zero-overhead when disarmed: Hit is a single atomic load and a predictable
// branch until at least one site is armed. Callers interpret the returned
// Effect; the package knows nothing about transactions, so it can sit below
// every layer of the runtime without import cycles.
//
// Sites are identified by name. The canonical site names for the runtime's
// recovery paths are declared here so that chaos schedules, documentation,
// and call sites agree on them.
package faultpoint

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Effect is what a fired trigger asks the call site to do. Sites interpret
// only the effects that make sense for them and ignore the rest, so a
// schedule may arm any effect anywhere without breaking invariants.
type Effect int

const (
	// None: proceed normally (trigger did not fire, or counting-only).
	None Effect = iota
	// Delay: the injected sleep (performed inside Hit) was the whole
	// fault; proceed normally afterwards.
	Delay
	// Doom: asynchronously doom the current transaction, as a contention
	// manager would.
	Doom
	// Timeout: behave as if the timed acquisition expired (forced
	// ErrTimeout path).
	Timeout
	// FailValidation: behave as if pre-commit validation failed.
	FailValidation
	// Crash: simulate a process kill at this site. The WAL interprets it by
	// freezing the log writer exactly where it stands — bytes already
	// written stay written, nothing later is, and no waiter is ever
	// acknowledged — so a recovery pass over the surviving files can be
	// checked against what was acknowledged before the "kill".
	Crash
)

// String returns the effect name.
func (e Effect) String() string {
	switch e {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Doom:
		return "doom"
	case Timeout:
		return "timeout"
	case FailValidation:
		return "fail-validation"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("effect(%d)", int(e))
	}
}

// Canonical failpoint sites woven through the runtime's recovery paths.
const (
	// StmPreCommit is hit at the top of every commit attempt, before the
	// doomed check. Doom here exercises the doomed-at-commit path.
	StmPreCommit = "stm/pre-commit"
	// StmValidate is hit after the transaction enters Validating, before
	// its validation handlers run. FailValidation here forces the
	// validation-failure rollback even for transactions with no handlers.
	StmValidate = "stm/validate"
	// StmMidRollback is hit once when rollback begins, before the first
	// inverse runs.
	StmMidRollback = "stm/mid-rollback"
	// StmBetweenUndo is hit before each inverse operation of the undo log.
	StmBetweenUndo = "stm/between-undo"
	// StmPostAbort is hit after locks are released, before post-abort
	// disposables run.
	StmPostAbort = "stm/post-abort"
	// LockRegistered is hit between a lock's registration with the
	// transaction and the acquisition attempt. Timeout here forces the
	// registered-but-never-acquired cleanup path.
	LockRegistered = "lockmgr/registered"
	// LockWait is hit inside timed wait loops, between wait-channel setup
	// and the select. Delay here widens the doom/wakeup race window.
	LockWait = "lockmgr/wait"
	// SemAcquire is hit at the top of every transactional semaphore
	// acquisition (the queue's blocking substrate).
	SemAcquire = "core/sem-acquire"
	// RWValidate is hit before the rwstm baseline validates its read set.
	RWValidate = "rwstm/validate"
	// RWWriteBack is hit after validation succeeds, before the rwstm
	// commit protocol writes shadow copies back.
	RWWriteBack = "rwstm/write-back"
	// WalMidBatch is hit between record writes of one WAL batch. Crash here
	// leaves a torn batch: a prefix of the batch's records fully written,
	// then half of the next record's bytes.
	WalMidBatch = "wal/mid-batch"
	// WalPreFsync is hit after a batch's records are written, before the
	// fsync that makes them durable. Crash here loses the whole batch (the
	// file is rewound to the batch's start), modelling unsynced page-cache
	// loss.
	WalPreFsync = "wal/pre-fsync"
	// WalPostFsync is hit after the fsync succeeds, before waiting
	// committers are acknowledged. Crash here yields durable-but-unacked
	// transactions, the case recovery is allowed to resurrect.
	WalPostFsync = "wal/post-fsync-pre-ack"
	// WalMidCheckpoint is hit between object sections while a checkpoint is
	// being written. Crash here abandons the half-written checkpoint, which
	// recovery must ignore in favour of the previous one (or none).
	WalMidCheckpoint = "wal/mid-checkpoint"
	// WalMidTruncate is hit between segment deletions while old WAL
	// segments are pruned after a checkpoint. Crash here leaves stale
	// segments whose records recovery must skip by LSN.
	WalMidTruncate = "wal/mid-truncate"
	// BoostLazyDrain is hit once per abstract key as the commit-time drain
	// of a lazy object acquires its locks. Timeout here forces the
	// lock-timeout-at-drain path (abort by log truncation, nothing applied);
	// Doom exercises the doomed-mid-drain discovery before any op reaches
	// the base object.
	BoostLazyDrain = "boost/lazy-drain"
	// BoostPromote is hit by an adaptive engine's migration goroutine after
	// the transitional bridge mode is published and before the call-epoch
	// drain barrier. It runs outside any transaction, so only Delay is
	// meaningful: a delay here holds the object in bridge mode (every new
	// locked call paying both tables) while live transactions keep running,
	// widening the exact window the migration protocol must keep sound.
	BoostPromote = "boost/promote"
	// TwopcPrePrepare is hit by a participant log at the top of Prepare,
	// before the prepare record is appended. Crash here kills the
	// participant with nothing logged: presumed abort, the span must be
	// absent on every participant after recovery.
	TwopcPrePrepare = "wal/2pc-pre-prepare"
	// TwopcPostPrepare is hit by a participant log after its prepare record
	// is durable, before the vote returns to the coordinator. Crash here is
	// the classic in-doubt case: the participant holds a durable prepare it
	// never voted, and recovery must resolve it from the coordinator's
	// decision log (or the presumed-abort rule).
	TwopcPostPrepare = "wal/2pc-post-prepare-pre-vote"
	// TwopcPreDecision is hit by the coordinator after every participant
	// voted yes, before the commit decision is force-logged. Crash here
	// leaves every participant prepared with no decision anywhere: recovery
	// presumed-aborts the whole span.
	TwopcPreDecision = "txncoord/pre-decision"
	// TwopcPostDecision is hit by the coordinator after the commit decision
	// is durable, before any participant is notified. Crash here commits the
	// span at recovery: every participant is in-doubt and the decision log
	// says commit.
	TwopcPostDecision = "txncoord/post-decision-pre-notify"
	// TwopcPreApply is hit by a participant log at the top of a commit
	// Decide, before the commit marker is appended. Crash here models a
	// participant dying between the coordinator's decision and its own
	// marker: its sibling may already be committed, and recovery must commit
	// the in-doubt half from the coordinator's decision to restore span
	// atomicity.
	TwopcPreApply = "wal/2pc-pre-commit-apply"
)

// Sites returns every canonical site name, sorted.
func Sites() []string {
	return []string{
		StmPreCommit, StmValidate, StmMidRollback, StmBetweenUndo,
		StmPostAbort, LockRegistered, LockWait, SemAcquire,
		RWValidate, RWWriteBack,
		WalMidBatch, WalPreFsync, WalPostFsync, WalMidCheckpoint,
		WalMidTruncate, BoostLazyDrain, BoostPromote,
		TwopcPrePrepare, TwopcPostPrepare, TwopcPreDecision,
		TwopcPostDecision, TwopcPreApply,
	}
}

// Trigger arms a site. The firing condition is the conjunction of the
// configured gates: an EveryN gate (fire only on every Nth hit), a Prob gate
// (fire with the given probability), and a OneShot gate (fire at most once).
// Zero values disable a gate, so the zero Trigger fires on every hit with
// Effect None (counting only).
type Trigger struct {
	// Effect is injected when the trigger fires.
	Effect Effect
	// Delay is slept inside Hit when the trigger fires, whatever the
	// Effect; with Effect Delay the sleep is the whole fault.
	Delay time.Duration
	// Prob in (0,1) gates firing with that probability; 0 and >=1 always
	// pass.
	Prob float64
	// EveryN > 1 fires only on hits whose ordinal is a multiple of N.
	EveryN int64
	// OneShot disarms the trigger (but keeps counting hits) after its
	// first firing.
	OneShot bool
}

// SiteCounts reports a site's activity since it was armed.
type SiteCounts struct {
	Hits  int64 // times the site was reached while armed
	Fires int64 // times the trigger fired
}

type site struct {
	trig  Trigger
	hits  atomic.Int64
	fires atomic.Int64
	spent atomic.Bool // OneShot already fired
}

var (
	armed atomic.Int64 // number of armed sites; 0 = fast path everywhere
	mu    sync.RWMutex
	table = map[string]*site{}
)

// Enable arms name with t, replacing any existing trigger (and resetting the
// site's counters).
func Enable(name string, t Trigger) {
	mu.Lock()
	if _, ok := table[name]; !ok {
		armed.Add(1)
	}
	table[name] = &site{trig: t}
	mu.Unlock()
}

// Disable disarms name. Disabling an unarmed site is a no-op.
func Disable(name string) {
	mu.Lock()
	if _, ok := table[name]; ok {
		delete(table, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every site, restoring the zero-overhead fast path.
func Reset() {
	mu.Lock()
	clear(table)
	armed.Store(0)
	mu.Unlock()
}

// Armed reports how many sites are armed.
func Armed() int { return int(armed.Load()) }

// Counts returns the hit/fire counters of name (zero if unarmed).
func Counts(name string) SiteCounts {
	mu.RLock()
	st := table[name]
	mu.RUnlock()
	if st == nil {
		return SiteCounts{}
	}
	return SiteCounts{Hits: st.hits.Load(), Fires: st.fires.Load()}
}

// Snapshot returns the counters of every armed site.
func Snapshot() map[string]SiteCounts {
	mu.RLock()
	defer mu.RUnlock()
	out := make(map[string]SiteCounts, len(table))
	for name, st := range table {
		out[name] = SiteCounts{Hits: st.hits.Load(), Fires: st.fires.Load()}
	}
	return out
}

// FormatSnapshot renders a snapshot as sorted "site hits/fires" lines.
func FormatSnapshot(snap map[string]SiteCounts) string {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for _, name := range names {
		c := snap[name]
		s += fmt.Sprintf("%-22s hits=%-6d fires=%d\n", name, c.Hits, c.Fires)
	}
	return s
}

// Hit consults the registry at a named site. With nothing armed anywhere it
// is a single atomic load. When the site's trigger fires, Hit sleeps the
// trigger's Delay and returns its Effect for the caller to interpret.
func Hit(name string) Effect {
	if armed.Load() == 0 {
		return None
	}
	return slowHit(name)
}

func slowHit(name string) Effect {
	mu.RLock()
	st := table[name]
	mu.RUnlock()
	if st == nil {
		return None
	}
	n := st.hits.Add(1)
	t := st.trig
	if t.OneShot && st.spent.Load() {
		return None
	}
	if t.EveryN > 1 && n%t.EveryN != 0 {
		return None
	}
	if t.Prob > 0 && t.Prob < 1 && rand.Float64() >= t.Prob {
		return None
	}
	if t.OneShot && !st.spent.CompareAndSwap(false, true) {
		return None // another goroutine used the one shot
	}
	st.fires.Add(1)
	if t.Delay > 0 {
		time.Sleep(t.Delay)
	}
	return t.Effect
}
