package faultpoint

import (
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsNone(t *testing.T) {
	Reset()
	if got := Hit(StmPreCommit); got != None {
		t.Fatalf("disarmed Hit = %v, want None", got)
	}
	if c := Counts(StmPreCommit); c.Hits != 0 {
		t.Fatalf("disarmed site counted hits: %+v", c)
	}
}

func TestEnableDisable(t *testing.T) {
	Reset()
	Enable(LockWait, Trigger{Effect: Timeout})
	if Armed() != 1 {
		t.Fatalf("Armed = %d, want 1", Armed())
	}
	if got := Hit(LockWait); got != Timeout {
		t.Fatalf("Hit = %v, want Timeout", got)
	}
	// Unrelated sites are unaffected.
	if got := Hit(StmPreCommit); got != None {
		t.Fatalf("unarmed sibling site fired: %v", got)
	}
	Disable(LockWait)
	if Armed() != 0 {
		t.Fatalf("Armed = %d after Disable, want 0", Armed())
	}
	if got := Hit(LockWait); got != None {
		t.Fatalf("Hit after Disable = %v, want None", got)
	}
	Disable(LockWait) // no-op, must not underflow armed
	if Armed() != 0 {
		t.Fatalf("Armed = %d after double Disable, want 0", Armed())
	}
}

func TestEveryN(t *testing.T) {
	Reset()
	defer Reset()
	Enable(StmValidate, Trigger{Effect: FailValidation, EveryN: 3})
	var fires int
	for i := 0; i < 9; i++ {
		if Hit(StmValidate) == FailValidation {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("EveryN=3 over 9 hits fired %d times, want 3", fires)
	}
	if c := Counts(StmValidate); c.Hits != 9 || c.Fires != 3 {
		t.Fatalf("counts = %+v, want 9 hits / 3 fires", c)
	}
}

func TestOneShot(t *testing.T) {
	Reset()
	defer Reset()
	Enable(LockRegistered, Trigger{Effect: Doom, OneShot: true})
	var fires int
	for i := 0; i < 5; i++ {
		if Hit(LockRegistered) == Doom {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("OneShot fired %d times, want 1", fires)
	}
	if c := Counts(LockRegistered); c.Hits != 5 || c.Fires != 1 {
		t.Fatalf("counts = %+v, want 5 hits / 1 fire", c)
	}
}

func TestOneShotConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SemAcquire, Trigger{Effect: Timeout, OneShot: true})
	var mu sync.Mutex
	fires := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Hit(SemAcquire) == Timeout {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fires != 1 {
		t.Fatalf("concurrent OneShot fired %d times, want exactly 1", fires)
	}
}

func TestProbability(t *testing.T) {
	Reset()
	defer Reset()
	Enable(StmPostAbort, Trigger{Effect: Delay, Prob: 0.5})
	const n = 2000
	var fires int
	for i := 0; i < n; i++ {
		if Hit(StmPostAbort) == Delay {
			fires++
		}
	}
	// Binomial(2000, 0.5): 6 sigma is ~134.
	if fires < n/2-200 || fires > n/2+200 {
		t.Fatalf("Prob=0.5 fired %d/%d times; far outside expectation", fires, n)
	}
	// Prob 0 and >= 1 always pass the gate.
	Enable(StmPostAbort, Trigger{Effect: Doom, Prob: 1})
	if Hit(StmPostAbort) != Doom {
		t.Fatal("Prob=1 did not fire")
	}
}

func TestDelayIsSlept(t *testing.T) {
	Reset()
	defer Reset()
	Enable(StmMidRollback, Trigger{Effect: Delay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if got := Hit(StmMidRollback); got != Delay {
		t.Fatalf("Hit = %v, want Delay", got)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 20ms sleep", elapsed)
	}
}

func TestSnapshotAndSites(t *testing.T) {
	Reset()
	defer Reset()
	Enable(StmPreCommit, Trigger{})
	Enable(LockWait, Trigger{Effect: Timeout})
	Hit(StmPreCommit)
	Hit(LockWait)
	snap := Snapshot()
	if len(snap) != 2 || snap[StmPreCommit].Hits != 1 || snap[LockWait].Fires != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if FormatSnapshot(snap) == "" {
		t.Fatal("FormatSnapshot empty")
	}
	if len(Sites()) < 8 {
		t.Fatalf("Sites() = %v, expected the canonical list", Sites())
	}
}

// BenchmarkHitDisarmed measures the disarmed fast path: the cost every hot
// path pays in production. It must stay at a single atomic load (sub-ns to
// low-ns on any modern core).
func BenchmarkHitDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Hit(StmPreCommit) != None {
			b.Fatal("fired while disarmed")
		}
	}
}

// BenchmarkHitArmedElsewhere measures the slow path taken when some other
// site is armed: a map lookup under RLock, still cheap.
func BenchmarkHitArmedElsewhere(b *testing.B) {
	Reset()
	Enable(LockWait, Trigger{Effect: Timeout})
	defer Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Hit(StmPreCommit) != None {
			b.Fatal("unarmed site fired")
		}
	}
}
