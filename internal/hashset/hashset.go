// Package hashset implements striped-lock concurrent hash containers over
// any comparable key type (sets, multisets). The paper's related-work
// discussion observes that building a
// highly-concurrent transactional hash table with open nesting requires
// reimplementing the hash table itself, while boosting treats it as a black
// box — this package is that black box.
package hashset

import (
	"hash/maphash"
	"sync"
)

// DefaultStripes is the stripe count used by New.
const DefaultStripes = 64

// Set is a concurrent hash set of K keys with per-stripe locking.
// Create with New or NewStripes.
type Set[K comparable] struct {
	seed    maphash.Seed
	stripes []stripe[K]
}

type stripe[K comparable] struct {
	mu   sync.RWMutex
	keys map[K]struct{}
	_    [32]byte // pad to reduce false sharing
}

// New returns an empty set with DefaultStripes stripes.
func New[K comparable]() *Set[K] { return NewStripes[K](DefaultStripes) }

// NewStripes returns an empty set with n stripes (minimum 1).
func NewStripes[K comparable](n int) *Set[K] {
	if n < 1 {
		n = 1
	}
	s := &Set[K]{seed: maphash.MakeSeed(), stripes: make([]stripe[K], n)}
	for i := range s.stripes {
		s.stripes[i].keys = make(map[K]struct{})
	}
	return s
}

func (s *Set[K]) stripe(key K) *stripe[K] {
	h := maphash.Comparable(s.seed, key)
	return &s.stripes[h%uint64(len(s.stripes))]
}

// Add inserts key, reporting whether the set changed.
func (s *Set[K]) Add(key K) bool {
	st := s.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.keys[key]; ok {
		return false
	}
	st.keys[key] = struct{}{}
	return true
}

// Remove deletes key, reporting whether the set changed.
func (s *Set[K]) Remove(key K) bool {
	st := s.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.keys[key]; !ok {
		return false
	}
	delete(st.keys, key)
	return true
}

// Contains reports whether key is present.
func (s *Set[K]) Contains(key K) bool {
	st := s.stripe(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.keys[key]
	return ok
}

// Len returns the number of keys.
func (s *Set[K]) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.keys)
		st.mu.RUnlock()
	}
	return n
}

// Keys returns all keys in unspecified order.
func (s *Set[K]) Keys() []K {
	var out []K
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k := range st.keys {
			out = append(out, k)
		}
		st.mu.RUnlock()
	}
	return out
}
