package hashset

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestMultiSetBasics(t *testing.T) {
	m := NewMultiSet[int64]()
	if m.Count(5) != 0 {
		t.Fatal("fresh count != 0")
	}
	if n := m.Add(5); n != 1 {
		t.Fatalf("Add = %d", n)
	}
	if n := m.Add(5); n != 2 {
		t.Fatalf("Add = %d", n)
	}
	if m.Count(5) != 2 {
		t.Fatalf("Count = %d", m.Count(5))
	}
	if !m.RemoveOne(5) || m.Count(5) != 1 {
		t.Fatal("RemoveOne broken")
	}
	if !m.RemoveOne(5) || m.Count(5) != 0 {
		t.Fatal("second RemoveOne broken")
	}
	if m.RemoveOne(5) {
		t.Fatal("RemoveOne on empty = true")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMultiSetLenAcrossKeys(t *testing.T) {
	m := NewMultiSetStripes[int64](4)
	for k := int64(0); k < 10; k++ {
		for i := int64(0); i <= k; i++ {
			m.Add(k)
		}
	}
	if m.Len() != 55 { // 1+2+...+10
		t.Fatalf("Len = %d, want 55", m.Len())
	}
}

func TestMultiSetStripesClamped(t *testing.T) {
	m := NewMultiSetStripes[int64](0)
	m.Add(1)
	if m.Count(1) != 1 {
		t.Fatal("single-stripe multiset broken")
	}
}

func TestMultiSetQuickModel(t *testing.T) {
	m := NewMultiSet[int64]()
	model := map[int64]int{}
	f := func(k int64, add bool) bool {
		k = k % 32
		if add {
			model[k]++
			return m.Add(k) == model[k]
		}
		got := m.RemoveOne(k)
		want := model[k] > 0
		if want {
			model[k]--
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSetConcurrentNet(t *testing.T) {
	m := NewMultiSet[int64]()
	const keyRange = 16
	var net [keyRange]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 8))
			local := [keyRange]int64{}
			for i := 0; i < 2000; i++ {
				k := int64(r.IntN(keyRange))
				if r.IntN(2) == 0 {
					m.Add(k)
					local[k]++
				} else if m.RemoveOne(k) {
					local[k]--
				}
			}
			mu.Lock()
			for k := range local {
				net[k] += local[k]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		if got := int64(m.Count(int64(k))); got != net[k] {
			t.Errorf("key %d: count = %d, net = %d", k, got, net[k])
		}
	}
}
