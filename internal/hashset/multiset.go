package hashset

import (
	"hash/maphash"
	"sync"
)

// MultiSet is a concurrent multiset (bag) of K keys with per-stripe
// locking: a linearizable base object for a boosted transactional bag.
type MultiSet[K comparable] struct {
	seed    maphash.Seed
	stripes []multiStripe[K]
}

type multiStripe[K comparable] struct {
	mu     sync.RWMutex
	counts map[K]int
	_      [32]byte
}

// NewMultiSet returns an empty multiset with DefaultStripes stripes.
func NewMultiSet[K comparable]() *MultiSet[K] { return NewMultiSetStripes[K](DefaultStripes) }

// NewMultiSetStripes returns an empty multiset with n stripes (minimum 1).
func NewMultiSetStripes[K comparable](n int) *MultiSet[K] {
	if n < 1 {
		n = 1
	}
	m := &MultiSet[K]{seed: maphash.MakeSeed(), stripes: make([]multiStripe[K], n)}
	for i := range m.stripes {
		m.stripes[i].counts = make(map[K]int)
	}
	return m
}

func (m *MultiSet[K]) stripe(key K) *multiStripe[K] {
	h := maphash.Comparable(m.seed, key)
	return &m.stripes[h%uint64(len(m.stripes))]
}

// Add inserts one occurrence of key, returning the new count.
func (m *MultiSet[K]) Add(key K) int {
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.counts[key]++
	return st.counts[key]
}

// RemoveOne deletes one occurrence of key, reporting whether one existed.
func (m *MultiSet[K]) RemoveOne(key K) bool {
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	c := st.counts[key]
	if c == 0 {
		return false
	}
	if c == 1 {
		delete(st.counts, key)
	} else {
		st.counts[key] = c - 1
	}
	return true
}

// Count returns the number of occurrences of key.
func (m *MultiSet[K]) Count(key K) int {
	st := m.stripe(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.counts[key]
}

// Range calls fn for each distinct key with its occurrence count until fn
// returns false. Each stripe is visited under its read lock; the traversal
// as a whole is not atomic, so callers wanting a consistent snapshot must be
// quiescent (the checkpoint contract).
func (m *MultiSet[K]) Range(fn func(key K, count int) bool) {
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.RLock()
		for k, c := range st.counts {
			if !fn(k, c) {
				st.mu.RUnlock()
				return
			}
		}
		st.mu.RUnlock()
	}
}

// Len returns the total number of occurrences across all keys.
func (m *MultiSet[K]) Len() int {
	n := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.RLock()
		for _, c := range st.counts {
			n += c
		}
		st.mu.RUnlock()
	}
	return n
}
