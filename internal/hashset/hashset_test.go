package hashset

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New[int64]()
	if !s.Add(7) || s.Add(7) {
		t.Fatal("Add semantics wrong")
	}
	if !s.Contains(7) || s.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if !s.Remove(7) || s.Remove(7) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStripesClamped(t *testing.T) {
	s := NewStripes[int64](-3)
	s.Add(1)
	if !s.Contains(1) {
		t.Fatal("single-stripe set broken")
	}
}

func TestLenAndKeys(t *testing.T) {
	s := New[int64]()
	for k := int64(0); k < 100; k++ {
		s.Add(k)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := map[int64]bool{}
	for _, k := range s.Keys() {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if len(seen) != 100 {
		t.Fatalf("Keys returned %d keys", len(seen))
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	s := New[int64]()
	model := map[int64]bool{}
	f := func(k int64, add bool) bool {
		if add {
			got := s.Add(k)
			want := !model[k]
			model[k] = true
			return got == want
		}
		got := s.Remove(k)
		want := model[k]
		delete(model, k)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	s := NewStripes[int64](8)
	const keyRange = 64
	var adds, removes [keyRange]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 13))
			for i := 0; i < 3000; i++ {
				k := int64(r.IntN(keyRange))
				if r.IntN(2) == 0 {
					if s.Add(k) {
						adds[k].Add(1)
					}
				} else {
					if s.Remove(k) {
						removes[k].Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		present := int64(0)
		if s.Contains(int64(k)) {
			present = 1
		}
		if d := adds[k].Load() - removes[k].Load(); d != present {
			t.Errorf("key %d: adds-removes = %d, present = %d", k, d, present)
		}
	}
}
