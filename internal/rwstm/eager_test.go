package rwstm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestEagerWriteVisibleOnlyAfterCommit(t *testing.T) {
	v := NewVarEager(1)
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 2)
		if v.Read(tx) != 2 {
			t.Error("read-own-write failed on eager var")
		}
		if v.ReadDirect() != 1 {
			t.Error("eager write published before commit")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != 2 {
		t.Fatal("commit did not publish")
	}
}

func TestEagerOwnershipBlocksReaders(t *testing.T) {
	// While an eager writer holds ownership (e.g. during think time),
	// any reader must abort — the DSTM2 false-conflict behaviour.
	v := NewVarEager(1)
	sys := stm.NewSystem(stm.Config{MaxRetries: 2})
	owned := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			v.Write(tx, 2)
			close(owned)
			<-release // think time with ownership held
			return nil
		})
	}()
	<-owned
	err := sys.Atomic(func(tx *stm.Tx) error {
		v.Read(tx)
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("reader against eager owner: %v, want retries exhausted", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestEagerWriterSeizesAndDoomsOwner(t *testing.T) {
	// Obstruction-freedom: a later writer takes ownership immediately and
	// dooms the current owner, who discovers it at commit — after its
	// think time was wasted.
	v := NewVarEager(1)
	sys := newSys()
	owned := make(chan struct{})
	seized := make(chan struct{})
	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			attempts++
			v.Write(tx, 2)
			if attempts == 1 {
				close(owned)
				<-seized // "think time" while doomed
			}
			return nil
		})
	}()
	<-owned
	// Seizing writer proceeds immediately (no waiting) and commits.
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 3)
		return nil
	}); err != nil {
		t.Fatalf("seizing writer failed: %v", err)
	}
	if v.ReadDirect() != 3 {
		t.Fatalf("seizer's value not committed: %d", v.ReadDirect())
	}
	close(seized)
	// The doomed first writer aborts, retries, and eventually commits.
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("doomed owner committed on first attempt (attempts=%d)", attempts)
	}
	if v.ReadDirect() != 2 {
		t.Fatalf("final = %d, want retried writer's 2", v.ReadDirect())
	}
}

func TestEagerAbortReleasesOwnership(t *testing.T) {
	v := NewVarEager(1)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 99)
		return boom
	})
	if v.ReadDirect() != 1 {
		t.Fatalf("aborted eager write leaked: %d", v.ReadDirect())
	}
	// Ownership must be free again: a fresh writer succeeds immediately.
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != 5 {
		t.Fatal("post-abort write lost")
	}
}

func TestEagerDoubleWriteSingleAcquisition(t *testing.T) {
	v := NewVarEager(1)
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 2)
		v.Write(tx, 3) // second write must not re-acquire (or deadlock)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != 3 {
		t.Fatalf("final = %d", v.ReadDirect())
	}
	if v.Version() == 0 {
		t.Fatal("version not bumped")
	}
}

func TestEagerLostUpdatePrevented(t *testing.T) {
	v := NewVarEager(0)
	sys := stm.NewSystem(stm.Config{LockTimeout: 20 * time.Millisecond})
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 300
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sys.Atomic(func(tx *stm.Tx) error {
					v.Write(tx, v.Read(tx)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := v.ReadDirect(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestEagerMixedWithLazyVars(t *testing.T) {
	e := NewVarEager(1)
	l := NewVar(10)
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		e.Write(tx, e.Read(tx)+l.Read(tx))
		l.Write(tx, 20)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if e.ReadDirect() != 11 || l.ReadDirect() != 20 {
		t.Fatalf("finals = %d, %d", e.ReadDirect(), l.ReadDirect())
	}
}
