package rwstm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tboost/internal/stm"
)

func newSys() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 20 * time.Millisecond})
}

func TestReadInitialValue(t *testing.T) {
	v := NewVar(42)
	sys := newSys()
	var got int
	if err := sys.Atomic(func(tx *stm.Tx) error {
		got = v.Read(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("Read = %d", got)
	}
}

func TestWriteVisibleAfterCommit(t *testing.T) {
	v := NewVar("old")
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, "new")
		if v.Read(tx) != "new" {
			t.Error("read-own-write failed")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != "new" {
		t.Fatalf("ReadDirect = %q after commit", v.ReadDirect())
	}
	if v.Version() == 0 {
		t.Fatal("version not bumped by commit")
	}
}

func TestWriteInvisibleBeforeCommit(t *testing.T) {
	v := NewVar(1)
	sys := newSys()
	inside := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			v.Write(tx, 99)
			close(inside)
			<-release
			return nil
		})
	}()
	<-inside
	if v.ReadDirect() != 1 {
		t.Fatal("uncommitted write leaked to shared memory")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != 99 {
		t.Fatal("commit did not write back")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	v := NewVar(1)
	sys := newSys()
	err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 2)
		return errors.New("user abort")
	})
	if err == nil {
		t.Fatal("expected user error")
	}
	if v.ReadDirect() != 1 {
		t.Fatalf("aborted write leaked: %d", v.ReadDirect())
	}
}

func TestTwoVarsAtomicSwap(t *testing.T) {
	a, b := NewVar(1), NewVar(2)
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		av, bv := a.Read(tx), b.Read(tx)
		a.Write(tx, bv)
		b.Write(tx, av)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if a.ReadDirect() != 2 || b.ReadDirect() != 1 {
		t.Fatalf("swap failed: a=%d b=%d", a.ReadDirect(), b.ReadDirect())
	}
}

func TestStaleReadAborts(t *testing.T) {
	// A transaction that read v before a concurrent commit must abort when
	// it reads another variable afterwards (snapshot consistency) or at
	// validation.
	v, w := NewVar(1), NewVar(1)
	sys := newSys()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		_ = v.Read(tx)
		if attempts == 1 {
			// Concurrent committer bumps w's version beyond our
			// read version.
			if err := sys.Atomic(func(tx2 *stm.Tx) error {
				w.Write(tx2, 2)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		_ = w.Read(tx) // stale on attempt 1 -> abort -> retry
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stale read must abort)", attempts)
	}
}

func TestWriteWriteConflictSerializes(t *testing.T) {
	// Concurrent increments must not lose updates.
	v := NewVar(0)
	sys := newSys()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sys.Atomic(func(tx *stm.Tx) error {
					v.Write(tx, v.Read(tx)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := v.ReadDirect(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d (lost updates)", got, goroutines*perG)
	}
}

func TestReadOnlyTransactionsNeverAbortQuiescent(t *testing.T) {
	v := NewVar(7)
	sys := newSys()
	for i := 0; i < 100; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error {
			if v.Read(tx) != 7 {
				t.Error("wrong value")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("aborts = %d on quiescent reads", st.Aborts)
	}
}

func TestBankInvariantUnderContention(t *testing.T) {
	// Transfers between accounts preserve the total. This is the classic
	// STM serializability smoke test.
	const accounts = 8
	const initial = 100
	vars := make([]*Var[int], accounts)
	for i := range vars {
		vars[i] = NewVar(initial)
	}
	sys := newSys()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				from := (g + i) % accounts
				to := (g + i + 1 + i%3) % accounts
				if from == to {
					continue
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					f := vars[from].Read(tx)
					if f == 0 {
						return nil
					}
					vars[from].Write(tx, f-1)
					vars[to].Write(tx, vars[to].Read(tx)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, v := range vars {
		total += v.ReadDirect()
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (serializability violated)", total, accounts*initial)
	}
}

func TestSnapshotConsistencyInvariant(t *testing.T) {
	// x and y always satisfy x + y == 0 in committed state. Readers must
	// never observe a violated invariant inside a transaction.
	x, y := NewVar(0), NewVar(0)
	sys := newSys()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			_ = sys.Atomic(func(tx *stm.Tx) error {
				x.Write(tx, i)
				y.Write(tx, -i)
				return nil
			})
		}
	}()
	for i := 0; i < 3000; i++ {
		err := sys.Atomic(func(tx *stm.Tx) error {
			xv := x.Read(tx)
			yv := y.Read(tx)
			if xv+yv != 0 {
				t.Errorf("observed x=%d y=%d inside transaction", xv, yv)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestValidationFailureCountsInStats(t *testing.T) {
	v := NewVar(0)
	sys := newSys()
	hold := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			if tx.Attempt() == 0 {
				_ = v.Read(tx)
				close(started)
				<-hold // concurrent commit invalidates the read
			}
			v.Write(tx, v.Read(tx)+100)
			return nil
		})
	}()
	<-started
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := v.ReadDirect(); got != 105 {
		t.Fatalf("final = %d, want 105", got)
	}
}

func TestReadWriteSetSizes(t *testing.T) {
	a, b, c := NewVar(1), NewVar(2), NewVar(3)
	sys := newSys()
	_ = sys.Atomic(func(tx *stm.Tx) error {
		if ReadSetSize(tx) != 0 || WriteSetSize(tx) != 0 {
			t.Error("fresh tx has nonempty sets")
		}
		a.Read(tx)
		b.Read(tx)
		c.Write(tx, 4)
		if ReadSetSize(tx) != 2 {
			t.Errorf("ReadSetSize = %d, want 2", ReadSetSize(tx))
		}
		if WriteSetSize(tx) != 1 {
			t.Errorf("WriteSetSize = %d, want 1", WriteSetSize(tx))
		}
		return nil
	})
}

func TestWriteDirect(t *testing.T) {
	v := NewVar(1)
	before := v.Version()
	v.WriteDirect(9)
	if v.ReadDirect() != 9 {
		t.Fatal("WriteDirect lost")
	}
	if v.Version() <= before {
		t.Fatal("WriteDirect did not bump version")
	}
}

func TestManyVarsLowContentionFewAborts(t *testing.T) {
	// Disjoint variables: almost no aborts expected even under concurrency.
	const n = 256
	vars := make([]*Var[int], n)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	sys := newSys()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				slot := (g*n/4 + i%(n/4)) // per-goroutine partition
				_ = sys.Atomic(func(tx *stm.Tx) error {
					vars[slot].Write(tx, vars[slot].Read(tx)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, v := range vars {
		total += v.ReadDirect()
	}
	if total != 4*500 {
		t.Fatalf("total = %d, want %d", total, 4*500)
	}
	if st := sys.Stats(); st.Aborts > 10 {
		t.Fatalf("aborts = %d on disjoint vars, want ~0", st.Aborts)
	}
}
