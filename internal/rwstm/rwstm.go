// Package rwstm implements a read/write-conflict software transactional
// memory in the TL2 style: per-variable versioned locks, a global version
// clock, commit-time write-back, and read-set validation.
//
// It is the repository's stand-in for DSTM2's "shadow factory" baseline in
// the paper's Figure 9 experiment: every transactional write allocates a
// shadow copy of the value, and conflicts are detected from raw read/write
// sets with no knowledge of object semantics. False conflicts — two
// transactions touching disjoint abstract state through overlapping memory —
// abort transactions here exactly as they do in DSTM2, which is the effect
// boosting eliminates.
//
// The package integrates with the stm runtime through extension slots and
// the OnValidate hook, so boosted objects and rwstm objects can in principle
// coexist inside one transaction.
package rwstm

import (
	"errors"
	"sync/atomic"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// ErrConflict is the abort cause for stale reads, locked-variable
// encounters, and failed commit-time validation.
var ErrConflict = errors.New("rwstm: read/write conflict")

func init() {
	stm.RegisterAbortKind(ErrConflict, stm.KindValidation)
	stm.RegisterAbortKind(ErrDoomed, stm.KindDoomed)
}

// clock is the global version clock (TL2's GV). Versions only need to be
// monotone, so one process-wide clock serves every transaction space.
var clock atomic.Uint64

// meta packs (version << 1 | lockBit) into one atomically updated word.
const lockBit = 1

func packed(version uint64, locked bool) uint64 {
	m := version << 1
	if locked {
		m |= lockBit
	}
	return m
}

func metaVersion(m uint64) uint64 { return m >> 1 }
func metaLocked(m uint64) bool    { return m&lockBit != 0 }

// tvar is the type-erased view of a Var used by read/write sets.
type tvar interface {
	metaWord() *atomic.Uint64
	writeBack(val any)
}

// Var is a transactional variable holding a value of type T. Reads and
// writes inside a transaction are buffered and validated; every committed
// write installs a fresh shadow copy. Create with NewVar. Vars are
// word-granularity transactional objects: a struct made of Vars is the
// Go equivalent of a DSTM2 shadow-factory object.
//
// A Var acquires write ownership in one of two modes, fixed at creation:
//
//   - Lazy (NewVar): TL2-style. Writes are buffered; ownership is taken
//     only during the commit protocol, so conflicts are brief.
//   - Eager (NewVarEager): DSTM2-style obstruction-free acquisition. The
//     first write claims exclusive ownership immediately; a later writer
//     *seizes* ownership and dooms the previous owner, which discovers the
//     doom at its next access or at commit — after its entire transaction,
//     think time included, has been wasted. Readers encountering an owned
//     variable abort politely. This is the acquisition discipline of the
//     paper's shadow-copy baseline, and it is what makes false conflicts so
//     expensive there. (Publication correctness is still enforced by the
//     TL2 commit protocol; ownership is a contention-management layer.)
type Var[T any] struct {
	meta  atomic.Uint64
	val   atomic.Pointer[T]
	owner atomic.Pointer[stm.Tx] // eager mode: current write owner
	eager bool
}

// NewVar returns a lazily-acquired Var initialized to val with version 0.
func NewVar[T any](val T) *Var[T] {
	v := &Var[T]{}
	v.val.Store(&val)
	return v
}

// NewVarEager returns an eagerly-acquired Var initialized to val.
func NewVarEager[T any](val T) *Var[T] {
	v := &Var[T]{eager: true}
	v.val.Store(&val)
	return v
}

func (v *Var[T]) metaWord() *atomic.Uint64 { return &v.meta }

func (v *Var[T]) writeBack(val any) {
	t := val.(T)
	v.val.Store(&t)
}

// Read returns the variable's value as seen by tx, aborting tx on conflict
// (the variable is locked by a committing writer, owned by an eager writer,
// or changed since tx began).
func (v *Var[T]) Read(tx *stm.Tx) T {
	s := stateOf(tx)
	if buffered, ok := s.writes[tvar(v)]; ok {
		return buffered.(T)
	}
	if v.eager {
		if own := v.owner.Load(); own != nil && own != tx {
			tx.Abort(ErrConflict) // politely yield to the eager writer
		}
	}
	m1 := v.meta.Load()
	if metaLocked(m1) {
		tx.Abort(ErrConflict)
	}
	val := v.val.Load()
	m2 := v.meta.Load()
	if m1 != m2 || metaVersion(m1) > s.readVersion {
		tx.Abort(ErrConflict)
	}
	s.reads = append(s.reads, v)
	return *val
}

// Write buffers val as tx's pending update to the variable. The shared
// variable's value is untouched until commit-time validation succeeds. For
// an eager Var, the first write additionally acquires exclusive ownership
// right now, aborting tx if another transaction owns it or has committed a
// newer version.
func (v *Var[T]) Write(tx *stm.Tx, val T) {
	s := stateOf(tx)
	if v.eager {
		if _, mine := s.writes[tvar(v)]; !mine {
			// Obstruction-free seizure: take ownership unconditionally
			// and doom whoever held it. The victim finds out later and
			// throws its transaction away.
			prev := v.owner.Swap(tx)
			if prev != nil && prev != tx {
				prev.Doom()
			}
			// Relinquish ownership when tx ends — unless someone has
			// already seized it from us. The undo log covers abort;
			// ownedClear covers commit.
			clear := func() { v.owner.CompareAndSwap(tx, nil) }
			s.ownedClear = append(s.ownedClear, clear)
			tx.Log(clear)
		}
	}
	s.writes[tvar(v)] = val
}

// ReadDirect returns the current committed value without any transaction.
// For initialization, tests and quiescent inspection.
func (v *Var[T]) ReadDirect() T {
	return *v.val.Load()
}

// WriteDirect installs val outside any transaction. It must not race with
// active transactions; use for initialization only.
func (v *Var[T]) WriteDirect(val T) {
	m := v.meta.Load()
	v.val.Store(&val)
	v.meta.Store(packed(metaVersion(m)+1, false))
}

// Version returns the variable's committed version, for tests.
func (v *Var[T]) Version() uint64 { return metaVersion(v.meta.Load()) }

// txState is the per-transaction rwstm bookkeeping attached via an stm
// extension slot.
type txState struct {
	readVersion uint64
	reads       []tvar
	writes      map[tvar]any
	ownedClear  []func()         // release eager ownerships at commit
	visible     map[any]struct{} // VisibleVars tx is registered on
}

type extKey struct{}

// stateOf returns tx's rwstm state, creating it on first use: the read
// version is sampled from the global clock and the commit-time validation
// hook is registered.
func stateOf(tx *stm.Tx) *txState {
	if s, ok := tx.Ext(extKey{}).(*txState); ok {
		return s
	}
	s := &txState{
		readVersion: clock.Load(),
		writes:      make(map[tvar]any, 8),
	}
	tx.SetExt(extKey{}, s)
	tx.OnValidate(func() error { return s.commit(tx) })
	return s
}

// commit runs the TL2 commit protocol: lock the write set (try-lock; any
// failure aborts, so lock acquisition cannot deadlock), pick a write
// version, validate the read set, write back shadow copies, and release the
// locks at the new version.
func (s *txState) commit(tx *stm.Tx) error {
	// Failpoint on read-set validation: a forced FailValidation exercises
	// the conflict-abort path before any lock is taken; a forced Doom
	// simulates an eager writer seizing one of our variables right now.
	switch faultpoint.Hit(faultpoint.RWValidate) {
	case faultpoint.FailValidation:
		return ErrConflict
	case faultpoint.Doom:
		tx.Doom()
	}
	// A transaction doomed by a conflicting writer must not commit even if
	// its reads would still validate (the writer may not have published
	// yet).
	if tx.Doomed() {
		return ErrDoomed
	}
	// Read-only fast path: reads were validated individually against
	// readVersion, and with no writes there is nothing to publish.
	if len(s.writes) == 0 {
		return nil
	}

	locked := make([]tvar, 0, len(s.writes))
	release := func(version uint64) {
		for _, v := range locked {
			v.metaWord().Store(packed(version, false))
		}
	}
	for v := range s.writes {
		m := v.metaWord().Load()
		if metaLocked(m) || metaVersion(m) > s.readVersion ||
			!v.metaWord().CompareAndSwap(m, packed(metaVersion(m), true)) {
			// Roll back the acquired locks at their prior versions.
			// Eager ownerships are released by the undo log when the
			// runtime rolls the transaction back.
			for _, lv := range locked {
				lm := lv.metaWord().Load()
				lv.metaWord().Store(packed(metaVersion(lm), false))
			}
			return ErrConflict
		}
		locked = append(locked, v)
	}

	writeVersion := clock.Add(1)

	// Validate the read set: every variable read must still be at a
	// version tx observed, and not locked by another committer.
	for _, v := range s.reads {
		if _, ours := s.writes[v]; ours {
			continue
		}
		m := v.metaWord().Load()
		if metaLocked(m) || metaVersion(m) > s.readVersion {
			for _, lv := range locked {
				lm := lv.metaWord().Load()
				lv.metaWord().Store(packed(metaVersion(lm), false))
			}
			return ErrConflict
		}
	}

	// Failpoint between validation and write-back: the write set is locked,
	// so a forced FailValidation here exercises the lock-release rollback,
	// and a Delay widens the window in which other committers see our locks.
	if faultpoint.Hit(faultpoint.RWWriteBack) == faultpoint.FailValidation {
		for _, lv := range locked {
			lm := lv.metaWord().Load()
			lv.metaWord().Store(packed(metaVersion(lm), false))
		}
		return ErrConflict
	}
	for v, val := range s.writes {
		v.writeBack(val)
	}
	release(writeVersion)
	for _, clear := range s.ownedClear {
		clear()
	}
	return nil
}

// ReadSetSize reports how many variables tx has read so far. For tests and
// instrumentation (the paper contrasts per-field logging with per-method
// logging).
func ReadSetSize(tx *stm.Tx) int {
	if s, ok := tx.Ext(extKey{}).(*txState); ok {
		return len(s.reads)
	}
	return 0
}

// WriteSetSize reports how many variables tx has written so far.
func WriteSetSize(tx *stm.Tx) int {
	if s, ok := tx.Ext(extKey{}).(*txState); ok {
		return len(s.writes)
	}
	return 0
}
