package rwstm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestVisibleVarBasicReadWrite(t *testing.T) {
	v := NewVisibleVar(1)
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		if v.Read(tx) != 1 {
			t.Error("Read != 1")
		}
		v.Write(tx, 2)
		if v.Read(tx) != 2 {
			t.Error("read-own-write failed")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != 2 {
		t.Fatal("write not published")
	}
}

func TestVisibleWriterDoomsReaders(t *testing.T) {
	v := NewVisibleVar(1)
	sys := newSys()
	readerIn := make(chan struct{})
	readerGo := make(chan struct{})
	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			attempts++
			_ = v.Read(tx)
			if attempts == 1 {
				close(readerIn)
				<-readerGo // think time as a registered visible reader
			}
			return nil
		})
	}()
	<-readerIn
	// Writer dooms the sleeping reader and commits immediately.
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 2)
		return nil
	}); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	close(readerGo)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("doomed reader committed first try (attempts=%d)", attempts)
	}
}

func TestVisibleReaderAbortsAgainstOwner(t *testing.T) {
	v := NewVisibleVar(1)
	sys := stm.NewSystem(stm.Config{MaxRetries: 2})
	owned := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			v.Write(tx, 2)
			close(owned)
			<-release
			return nil
		})
	}()
	<-owned
	err := sys.Atomic(func(tx *stm.Tx) error {
		v.Read(tx)
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("reader against owner: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestVisibleReaderDeregisteredOnCommitAndAbort(t *testing.T) {
	v := NewVisibleVar(1)
	sys := newSys()
	// Commit path.
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Read(tx)
		v.Read(tx) // second read must not re-register
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	v.rmu.Lock()
	n := len(v.readers)
	v.rmu.Unlock()
	if n != 0 {
		t.Fatalf("readers after commit = %d, want 0", n)
	}
	// Abort path.
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		v.Read(tx)
		return boom
	})
	v.rmu.Lock()
	n = len(v.readers)
	v.rmu.Unlock()
	if n != 0 {
		t.Fatalf("readers after abort = %d, want 0", n)
	}
}

func TestVisibleReadersDoNotDoomEachOther(t *testing.T) {
	v := NewVisibleVar(7)
	sys := newSys()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				stm.MustAtomicOn(sys, func(tx *stm.Tx) {
					if v.Read(tx) != 7 {
						t.Error("wrong value")
					}
				})
			}
		}()
	}
	wg.Wait()
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("read-only visible transactions aborted %d times", st.Aborts)
	}
}

func TestVisibleOwnWriteThenReadDoesNotSelfDoom(t *testing.T) {
	v := NewVisibleVar(1)
	sys := newSys()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		v.Write(tx, 5)
		if v.Read(tx) != 5 {
			t.Error("own write invisible")
		}
		v.Write(tx, 6) // second write must not doom self
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.ReadDirect() != 6 {
		t.Fatalf("final = %d", v.ReadDirect())
	}
}

func TestVisibleLostUpdatePrevented(t *testing.T) {
	// Even with doom-storms, read-modify-write counters must not lose
	// updates (correctness comes from TL2 validation, not ownership).
	v := NewVisibleVar(0)
	sys := stm.NewSystem(stm.Config{LockTimeout: 50 * time.Millisecond})
	var wg sync.WaitGroup
	const goroutines = 4
	const perG = 200
	var committed atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sys.Atomic(func(tx *stm.Tx) error {
					v.Write(tx, v.Read(tx)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
				committed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := v.ReadDirect(); int64(got) != committed.Load() {
		t.Fatalf("counter = %d, committed = %d (lost update)", got, committed.Load())
	}
}
