package rwstm

import (
	"errors"
	"sync"

	"tboost/internal/stm"
)

// ErrDoomed is the abort cause when a transaction was asynchronously aborted
// by a conflicting writer (the DSTM2 contention-management pattern).
var ErrDoomed = errors.New("rwstm: transaction doomed by conflicting writer")

// VisibleVar is a transactional variable in DSTM2's default discipline:
// eager write acquisition (first write takes exclusive ownership until
// commit or abort) plus *visible readers* — every reading transaction
// registers itself on the variable, and a writer acquiring the variable
// dooms all registered readers.
//
// This is the fidelity point for the paper's Figure 9 baseline: with reads
// visible and writes eager, any update near the root of the shadow tree
// aborts every transaction whose traversal passed through it, even ones
// touching disjoint keys, and each such abort throws away the victim's
// entire transaction (including its think time). The boosted tree's
// method-granularity locks eliminate exactly this wasted work.
type VisibleVar[T any] struct {
	Var[T]
	rmu     sync.Mutex
	readers map[*stm.Tx]struct{}
}

// NewVisibleVar returns a visible-reader, eager-writer Var initialized to
// val.
func NewVisibleVar[T any](val T) *VisibleVar[T] {
	v := &VisibleVar[T]{readers: make(map[*stm.Tx]struct{}, 4)}
	v.eager = true
	v.val.Store(&val)
	return v
}

// Read returns the variable's value as seen by tx, registering tx as a
// visible reader. If a writer owns the variable, or tx has been doomed by
// one, tx aborts.
func (v *VisibleVar[T]) Read(tx *stm.Tx) T {
	if tx.Doomed() {
		tx.Abort(ErrDoomed)
	}
	s := stateOf(tx)
	if buffered, ok := s.writes[tvar(&v.Var)]; ok {
		return buffered.(T)
	}
	if !s.isVisibleReader(v) {
		v.rmu.Lock()
		if own := v.owner.Load(); own != nil && own != tx {
			v.rmu.Unlock()
			tx.Abort(ErrConflict) // a writer owns it
		}
		v.readers[tx] = struct{}{}
		v.rmu.Unlock()
		s.addVisibleReader(v)
		// Deregister whichever way the transaction ends.
		unregister := func() {
			v.rmu.Lock()
			delete(v.readers, tx)
			v.rmu.Unlock()
		}
		tx.AtCommit(unregister)
		tx.Log(unregister)
	}
	return v.Var.Read(tx)
}

// Write buffers val and eagerly acquires exclusive ownership on first
// write, dooming every other visible reader of the variable.
func (v *VisibleVar[T]) Write(tx *stm.Tx, val T) {
	if tx.Doomed() {
		tx.Abort(ErrDoomed)
	}
	s := stateOf(tx)
	_, mine := s.writes[tvar(&v.Var)]
	v.Var.Write(tx, val) // eager acquisition (aborts tx on conflict)
	if !mine {
		// Ownership acquired: abort the visible readers.
		v.rmu.Lock()
		for r := range v.readers {
			if r != tx {
				r.Doom()
			}
		}
		v.rmu.Unlock()
	}
}

func (s *txState) isVisibleReader(v any) bool {
	if s.visible == nil {
		return false
	}
	_, ok := s.visible[v]
	return ok
}

func (s *txState) addVisibleReader(v any) {
	if s.visible == nil {
		s.visible = make(map[any]struct{}, 8)
	}
	s.visible[v] = struct{}{}
}
