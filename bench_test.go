// Benchmarks regenerating the paper's evaluation (§4), one per figure, plus
// ablations for the design knobs DESIGN.md calls out. Each benchmark runs
// the shared harness from internal/bench for a fixed measurement window and
// reports commits/sec and abort ratio as custom metrics (b.N is not the
// driver — throughput over a window is, matching the paper's methodology).
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig9 -benchtime=1x
// Full curves (threads sweep, longer windows): use cmd/boostbench.
package tboost_test

import (
	"math/rand/v2"
	"testing"
	"time"

	"tboost/internal/bench"
	"tboost/internal/core"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// benchWorkload is the shared configuration: mixed set workload with a
// short think time inside each transaction (the paper slept 100 ms; we
// scale down so the suite finishes in seconds).
func benchWorkload(threads, opsPerTx int, keyRange int64) bench.Workload {
	return bench.Workload{
		Threads:   threads,
		Duration:  300 * time.Millisecond,
		ThinkTime: 50 * time.Microsecond,
		KeyRange:  keyRange,
		OpsPerTx:  opsPerTx,
		ReadPct:   60,
		AddPct:    20,
	}
}

// report runs each target once per b.N iteration and publishes throughput
// and abort ratio.
func report(b *testing.B, target bench.Target, w bench.Workload) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		last = bench.Run(target, w)
	}
	b.ReportMetric(last.Throughput, "commits/sec")
	b.ReportMetric(100*last.AbortRatio(), "abort%")
	b.ReportMetric(float64(last.Commits), "commits")
}

// --- Figure 9: red-black tree, boosting vs shadow copies ---
//
// Fig. 9's regime is CPU-bound (think = 0): the comparison is per-method
// boosting overhead vs per-field STM overhead plus false-conflict aborts.
// See EXPERIMENTS.md for the think-time sensitivity discussion.

func fig9Workload(threads int) bench.Workload {
	w := benchWorkload(threads, 1, 1<<12)
	w.ThinkTime = 0
	return w
}

func BenchmarkFig9BoostedRBTree(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(itoa(threads)+"threads", func(b *testing.B) {
			report(b, bench.Fig9Targets()[0], fig9Workload(threads))
		})
	}
}

func BenchmarkFig9ShadowRBTree(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(itoa(threads)+"threads", func(b *testing.B) {
			report(b, bench.Fig9Targets()[1], fig9Workload(threads))
		})
	}
}

// --- Figure 10: skip list, single abstract lock vs lock per key ---

func BenchmarkFig10SkipListSingleLock(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(itoa(threads)+"threads", func(b *testing.B) {
			report(b, bench.Fig10Targets()[0], benchWorkload(threads, 1, 1<<12))
		})
	}
}

func BenchmarkFig10SkipListLockPerKey(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(itoa(threads)+"threads", func(b *testing.B) {
			report(b, bench.Fig10Targets()[1], benchWorkload(threads, 1, 1<<12))
		})
	}
}

// --- Figure 11: concurrent heap, readers/writer vs exclusive lock ---

func BenchmarkFig11HeapRWLock(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(itoa(threads)+"threads", func(b *testing.B) {
			report(b, bench.Fig11Targets()[0], benchWorkload(threads, 1, 1<<10))
		})
	}
}

func BenchmarkFig11HeapExclusive(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(itoa(threads)+"threads", func(b *testing.B) {
			report(b, bench.Fig11Targets()[1], benchWorkload(threads, 1, 1<<10))
		})
	}
}

// --- §4.1 abort-rate comparison (the "substantially higher rate of aborts"
// claim): same contended workload, boosted vs shadow, reporting abort%. ---

func BenchmarkAbortRateBoosted(b *testing.B) {
	w := benchWorkload(8, 4, 128) // small key range: heavy contention
	w.ThinkTime = 0
	report(b, bench.Fig9Targets()[0], w)
}

func BenchmarkAbortRateShadow(b *testing.B) {
	w := benchWorkload(8, 4, 128)
	w.ThinkTime = 0
	report(b, bench.Fig9Targets()[1], w)
}

// --- Ablations ---

// AblationLockMapStripes: how much does lock-table striping matter?
func BenchmarkAblationLockMapStripes(b *testing.B) {
	for _, target := range bench.AblationLockMapStripes([]int{1, 4, 64}) {
		b.Run(target.Name, func(b *testing.B) {
			report(b, target, benchWorkload(8, 1, 1<<12))
		})
	}
}

// AblationOpsPerTx: longer transactions hold abstract locks longer; how does
// throughput degrade with transaction length?
func BenchmarkAblationOpsPerTx(b *testing.B) {
	for _, ops := range []int{1, 4, 16} {
		b.Run(itoa(ops)+"ops", func(b *testing.B) {
			report(b, bench.Fig10Targets()[1], benchWorkload(8, ops, 1<<12))
		})
	}
}

// AblationKeyRange: contention scaling — smaller key ranges mean more
// same-key conflicts for the per-key discipline.
func BenchmarkAblationKeyRange(b *testing.B) {
	for _, r := range []int64{16, 256, 1 << 14} {
		b.Run("range"+itoa(int(r)), func(b *testing.B) {
			report(b, bench.Fig10Targets()[1], benchWorkload(8, 1, r))
		})
	}
}

// AblationPipeline: §3.3 pipeline feed throughput as stage count and buffer
// capacity vary. Deeper pipelines add hand-off latency; larger buffers add
// slack ("the larger the buffer, the greater the tolerance for asynchrony").
func BenchmarkAblationPipeline(b *testing.B) {
	for _, cfg := range []struct{ stages, cap int }{{1, 4}, {3, 4}, {3, 64}} {
		name := "stages" + itoa(cfg.stages) + "cap" + itoa(cfg.cap)
		b.Run(name, func(b *testing.B) {
			w := bench.Workload{
				Threads:  1, // SPSC per queue: one producer feeds the pipeline
				Duration: 300 * time.Millisecond,
				KeyRange: 1 << 20,
				OpsPerTx: 1,
				ReadPct:  1,
				AddPct:   1,
			}
			report(b, bench.PipelineTargets(cfg.stages, cfg.cap)[0], w)
		})
	}
}

// AblationHeapBases: the same boosted heap wrapper over a fine-grained Hunt
// heap vs a coarse-locked pairing heap — the black-box substitution claim
// for priority queues, quantified.
func BenchmarkAblationHeapBases(b *testing.B) {
	for _, target := range bench.AblationHeapBases() {
		b.Run(target.Name, func(b *testing.B) {
			report(b, target, benchWorkload(8, 1, 1<<10))
		})
	}
}

// AblationContentionPolicy: timeout-only vs wound-wait deadlock handling on
// a deadlock-prone multi-key workload.
func BenchmarkAblationContentionPolicy(b *testing.B) {
	for _, target := range bench.AblationContentionPolicy(50 * time.Millisecond) {
		b.Run(target.Name, func(b *testing.B) {
			w := bench.Workload{
				Threads:   8,
				Duration:  300 * time.Millisecond,
				ThinkTime: 400 * time.Microsecond, // spread across the ops
				KeyRange:  8,                      // tiny range: constant lock cycles
				OpsPerTx:  4,
				ReadPct:   0,
				AddPct:    50,
			}
			report(b, target, w)
		})
	}
}

// AblationLockTimeout: sensitivity of a contended coarse lock to the timed
// acquisition budget.
func BenchmarkAblationLockTimeout(b *testing.B) {
	for _, target := range bench.AblationLockTimeout([]time.Duration{
		500 * time.Microsecond, 5 * time.Millisecond, 100 * time.Millisecond,
	}) {
		b.Run(target.Name, func(b *testing.B) {
			report(b, target, benchWorkload(8, 1, 1<<12))
		})
	}
}

// AblationBoostingOverhead: the per-operation cost of transactionality.
// The paper argues the run-time burden of boosting (one abstract-lock
// acquisition plus one logged closure per call) is "far offset" by
// eliminating memory-access logging; this bench measures that burden
// directly against the raw linearizable base object, single-threaded.
func BenchmarkAblationBoostingOverheadRaw(b *testing.B) {
	s := skiplist.New()
	r := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := r.Int64N(1 << 12)
		switch i % 3 {
		case 0:
			s.Add(k)
		case 1:
			s.Remove(k)
		default:
			s.Contains(k)
		}
	}
}

func BenchmarkAblationBoostingOverheadBoosted(b *testing.B) {
	sys := stm.NewSystem(stm.Config{})
	s := core.NewKeyedSet(skiplist.New())
	r := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := r.Int64N(1 << 12)
		op := i % 3
		_ = sys.Atomic(func(tx *stm.Tx) error {
			switch op {
			case 0:
				s.Add(tx, k)
			case 1:
				s.Remove(tx, k)
			default:
				s.Contains(tx, k)
			}
			return nil
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
