// Warehouse: a flagship example composing six boosted objects in single
// transactions — an in-memory order-processing system.
//
//   - OrderedSet: a price index (range queries under interval locks)
//   - Map:        price -> stock level
//   - UniqueID:   order ids (never a conflict hot-spot)
//   - Map:        order id -> fulfillment state
//   - Queue:      fulfillment pipeline (orders visible only after commit)
//   - Counter:    revenue (increments commute; the audit read serializes)
//
// Each customer transaction finds an affordable product through the price
// index, decrements its stock, records the order, enqueues fulfillment
// work, and adds revenue — atomically; if anything fails the whole step
// rolls back. A fulfillment worker drains the queue. At the end the books
// must balance exactly.
//
// Run: go run ./examples/warehouse
package main

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"tboost"
)

const (
	products      = 64
	initialStock  = 10
	customers     = 8
	ordersPerCust = 100
	statusPlaced  = 1
	statusShipped = 2
)

var errNoStock = errors.New("nothing affordable in stock")

func main() {
	// Product p has price 10p+5; the price doubles as the product key.
	priceIndex := tboost.NewOrderedSet()
	stock := tboost.NewRBTreeMap[int64]() // price -> units remaining
	orderIDs := tboost.NewUniqueID()
	orders := tboost.NewRBTreeMap[int]() // order id -> status
	fulfill := tboost.NewQueue[int64](32)
	revenue := tboost.NewCounter(0)

	tboost.MustAtomic(func(tx *tboost.Tx) error {
		for p := int64(0); p < products; p++ {
			price := 10*p + 5
			priceIndex.Add(tx, price)
			stock.Put(tx, price, initialStock)
		}
		return nil
	})

	// Fulfillment worker: marks orders shipped, one per transaction. A
	// poison pill (-1) enqueued after all customers finish shuts it down;
	// FIFO order guarantees every real order precedes it.
	var shipped sync.WaitGroup
	shipped.Add(1)
	go func() {
		defer shipped.Done()
		for {
			var id int64
			tboost.MustAtomic(func(tx *tboost.Tx) error {
				id = fulfill.Take(tx)
				if id >= 0 {
					orders.Put(tx, id, statusShipped)
				}
				return nil
			})
			if id < 0 {
				return
			}
		}
	}()

	// Customers: each transaction buys the cheapest product within a
	// random budget that still has stock.
	var placed, declined int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < customers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(c), 99))
			for i := 0; i < ordersPerCust; i++ {
				budget := int64(r.IntN(10*products)) + 5
				err := tboost.Atomic(func(tx *tboost.Tx) error {
					// Range query: affordable prices, cheapest first.
					for _, price := range priceIndex.KeysRange(tx, 0, budget) {
						units, _ := stock.Get(tx, price)
						if units == 0 {
							continue
						}
						stock.Put(tx, price, units-1)
						id := orderIDs.AssignID(tx)
						orders.Put(tx, id, statusPlaced)
						fulfill.Offer(tx, id)
						revenue.Add(tx, price)
						return nil
					}
					return errNoStock // abort: nothing touched
				})
				mu.Lock()
				if err == nil {
					placed++
				} else {
					declined++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fulfill.Offer(tx, -1) // poison pill
		return nil
	})
	shipped.Wait()

	// Audit, all in one transaction: every unit sold is an order; revenue
	// equals the sum of sold prices; every order shipped.
	var soldUnits, expectedRevenue, gotRevenue int64
	var shippedCount int
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		soldUnits, expectedRevenue, shippedCount = 0, 0, 0
		for _, price := range priceIndex.KeysRange(tx, 0, 10*products+5) {
			units, _ := stock.Get(tx, price)
			sold := int64(initialStock) - units
			soldUnits += sold
			expectedRevenue += sold * price
		}
		// Order ids may have gaps (an id assigned by a transaction that
		// later aborted is abandoned, per §3.4), so scan the full range.
		for id := int64(1); id <= orderIDs.Assigned(); id++ {
			if s, ok := orders.Get(tx, id); ok && s == statusShipped {
				shippedCount++
			}
		}
		gotRevenue = revenue.Get(tx)
		return nil
	})

	fmt.Printf("orders placed: %d, declined: %d\n", placed, declined)
	fmt.Printf("units sold:    %d (must equal orders placed)\n", soldUnits)
	fmt.Printf("revenue:       %d (expected %d)\n", gotRevenue, expectedRevenue)
	fmt.Printf("shipped:       %d of %d\n", shippedCount, placed)
	switch {
	case soldUnits != placed:
		fmt.Println("AUDIT FAILED: stock does not match orders")
	case gotRevenue != expectedRevenue:
		fmt.Println("AUDIT FAILED: revenue mismatch")
	case int64(shippedCount) != placed:
		fmt.Println("AUDIT FAILED: unshipped orders")
	default:
		fmt.Println("audit passed: books balance")
	}
}
