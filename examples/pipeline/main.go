// Pipeline: the paper's §3.3 example — a three-stage transactional pipeline
// connected by boosted BlockingQueues with transactional semaphores.
//
// Stage 1 produces integers, stage 2 squares them, stage 3 prints a
// summary. Each stage handles one item per transaction. Items offered by a
// transaction become visible to the next stage only after that transaction
// commits; a mid-pipeline abort (simulated below for every 10th item)
// leaves both queues exactly as they were.
//
// Run: go run ./examples/pipeline
package main

import (
	"errors"
	"fmt"

	"tboost"
)

const items = 100

func main() {
	q1 := tboost.NewQueue[int](8)
	q2 := tboost.NewQueue[int](8)

	// Stage 1: producer.
	go func() {
		for i := 1; i <= items; i++ {
			i := i
			tboost.MustAtomic(func(tx *tboost.Tx) error {
				q1.Offer(tx, i)
				return nil
			})
		}
	}()

	// Stage 2: transformer. Every 10th first attempt aborts after doing
	// its work, demonstrating that the take and the offer are undone
	// together — no item is lost or duplicated.
	flake := errors.New("transient stage-2 failure")
	go func() {
		for i := 1; i <= items; i++ {
			flaky := i%10 == 0
			first := true
			for {
				err := tboost.Atomic(func(tx *tboost.Tx) error {
					v := q1.Take(tx)
					q2.Offer(tx, v*v)
					if flaky && first {
						first = false
						return flake // undo: item returns to q1's front
					}
					return nil
				})
				if err == nil {
					break
				}
			}
		}
	}()

	// Stage 3: consumer, in the main goroutine.
	sum := 0
	for i := 1; i <= items; i++ {
		var v int
		tboost.MustAtomic(func(tx *tboost.Tx) error {
			v = q2.Take(tx)
			return nil
		})
		want := i * i
		if v != want {
			fmt.Printf("FIFO violated: item %d = %d, want %d\n", i, v, want)
			return
		}
		sum += v
	}
	fmt.Printf("pipeline delivered %d items in order; sum of squares = %d\n", items, sum)
	// Output:
	// pipeline delivered 100 items in order; sum of squares = 338350
}
