// UniqueID: the paper's §3.4 example. A shared counter is the classic
// read/write-conflict hot-spot: every transaction that increments it
// conflicts with every other. The boosted generator never conflicts,
// because any two assignID calls returning different IDs commute — and the
// release of an aborted assignment is disposable, so the implementation may
// simply abandon it (the counter never reuses IDs).
//
// This example measures both designs under identical concurrency: the
// boosted generator versus a counter in the read/write STM.
//
// Run: go run ./examples/uniqueid
package main

import (
	"fmt"
	"sync"
	"time"

	"tboost"
	"tboost/internal/rwstm"
	"tboost/internal/stm"
)

const (
	workers = 8
	perW    = 2000
)

func main() {
	// Boosted: commutativity says no lock is needed at all.
	boostSys := tboost.NewSystem(tboost.Config{LockTimeout: 50 * time.Millisecond})
	gen := tboost.NewUniqueID()
	// As in the paper's experiments, each transaction does a little other
	// work after the call, widening the window in which a conflicting
	// commit could invalidate it.
	boostElapsed, _ := run(func(wg *sync.WaitGroup) {
		defer wg.Done()
		for i := 0; i < perW; i++ {
			stm.MustAtomicOn(boostSys, func(tx *stm.Tx) {
				gen.AssignID(tx)
				time.Sleep(5 * time.Microsecond)
			})
		}
	})
	bs := boostSys.Stats()

	// Baseline: a counter variable in the read/write-conflict STM. Every
	// increment read-modify-writes the same variable: constant conflicts.
	rwSys := tboost.NewSystem(tboost.Config{LockTimeout: 50 * time.Millisecond})
	counter := rwstm.NewVar[int64](0)
	rwElapsed, _ := run(func(wg *sync.WaitGroup) {
		defer wg.Done()
		for i := 0; i < perW; i++ {
			stm.MustAtomicOn(rwSys, func(tx *stm.Tx) {
				v := counter.Read(tx)
				time.Sleep(5 * time.Microsecond)
				counter.Write(tx, v+1)
			})
		}
	})
	rs := rwSys.Stats()

	fmt.Printf("assigned %d unique IDs\n", gen.Assigned())
	fmt.Printf("boosted generator:   %8v  aborts=%d (%.1f%%)\n",
		boostElapsed.Round(time.Millisecond), bs.Aborts, 100*bs.AbortRatio())
	fmt.Printf("read/write counter:  %8v  aborts=%d (%.1f%%), final=%d\n",
		rwElapsed.Round(time.Millisecond), rs.Aborts, 100*rs.AbortRatio(), counter.ReadDirect())
	if bs.Aborts == 0 {
		fmt.Println("boosted assignID never conflicted, as commutativity predicts")
	}
}

func run(worker func(*sync.WaitGroup)) (time.Duration, struct{}) {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker(&wg)
	}
	wg.Wait()
	return time.Since(start), struct{}{}
}
