// Tags: a string-keyed boosted set — the generic kernel lets the same
// boosting spec (per-key abstract locks, inverse logging, two-phase
// commitment) run over any comparable key type, not just int64.
//
// A tag index is the natural string-keyed workload: transactions attach and
// detach tags on a shared registry, and tags that differ never conflict —
// per-key commutativity works exactly as it does for integer keys.
//
// Run: go run ./examples/tags
package main

import (
	"errors"
	"fmt"

	"tboost"
)

func main() {
	tags := tboost.NewHashSetOf[string]()

	// Two transactions touching different tags proceed without conflict;
	// within one transaction, all tag edits commit atomically.
	err := tboost.Atomic(func(tx *tboost.Tx) error {
		tags.Add(tx, "urgent")
		tags.Add(tx, "backend")
		return nil
	})
	fmt.Println("commit err:", err)

	// An aborted transaction rolls its tag edits back by replaying
	// inverses — remove("frontend"), re-add("urgent") — in reverse order.
	failed := errors.New("validation failed")
	err = tboost.Atomic(func(tx *tboost.Tx) error {
		tags.Add(tx, "frontend")  // inverse: remove("frontend")
		tags.Remove(tx, "urgent") // inverse: add("urgent")
		return failed
	})
	fmt.Println("abort err:", err)

	tboost.MustAtomic(func(tx *tboost.Tx) error {
		for _, tag := range []string{"urgent", "backend", "frontend"} {
			fmt.Printf("contains(%q) = %v\n", tag, tags.Contains(tx, tag))
		}
		return nil
	})
}
