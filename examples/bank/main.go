// Bank: concurrent account transfers over a boosted transactional map.
//
// Transfers between different account pairs commute, so they run in
// parallel under per-key abstract locks; transfers touching the same
// account serialize. A sweep transaction occasionally reads every account
// and checks the conservation invariant *inside* a transaction — it must
// always see a consistent total.
//
// Run: go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"tboost"
)

const (
	accounts       = 16
	initialBalance = 1_000
	workers        = 8
	transfersPerW  = 500
)

var errInsufficient = errors.New("insufficient funds")

func main() {
	bank := tboost.NewRBTreeMap[int64]()

	tboost.MustAtomic(func(tx *tboost.Tx) error {
		for a := int64(0); a < accounts; a++ {
			bank.Put(tx, a, initialBalance)
		}
		return nil
	})

	var wg sync.WaitGroup
	var declined, audits int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 7))
			for i := 0; i < transfersPerW; i++ {
				if i%100 == 50 {
					// Audit: snapshot every balance in one transaction.
					total := int64(0)
					tboost.MustAtomic(func(tx *tboost.Tx) error {
						total = 0
						for a := int64(0); a < accounts; a++ {
							v, _ := bank.Get(tx, a)
							total += v
						}
						return nil
					})
					if total != accounts*initialBalance {
						fmt.Printf("AUDIT FAILED: total = %d\n", total)
						return
					}
					mu.Lock()
					audits++
					mu.Unlock()
					continue
				}
				from := r.Int64N(accounts)
				to := r.Int64N(accounts)
				if from == to {
					continue
				}
				amount := int64(r.IntN(50) + 1)
				err := tboost.Atomic(func(tx *tboost.Tx) error {
					f, _ := bank.Get(tx, from)
					if f < amount {
						return errInsufficient // abort: no partial transfer
					}
					bank.Put(tx, from, f-amount)
					t, _ := bank.Get(tx, to)
					bank.Put(tx, to, t+amount)
					return nil
				})
				if errors.Is(err, errInsufficient) {
					mu.Lock()
					declined++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	total := int64(0)
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		total = 0
		for a := int64(0); a < accounts; a++ {
			v, _ := bank.Get(tx, a)
			total += v
		}
		return nil
	})
	fmt.Printf("final total = %d (expected %d); %d transfers declined; %d audits passed\n",
		total, accounts*initialBalance, declined, audits)
}
