// Scheduler: a transactional priority-queue task scheduler over the boosted
// heap (§3.2), combining three boosted objects in single transactions:
//
//   - a Heap holding pending tasks ordered by deadline,
//   - a UniqueID generator stamping tasks (never a conflict hot-spot), and
//   - a Map recording task state.
//
// Workers atomically claim the most urgent task and mark it running; if a
// worker decides the task is malformed it aborts, and the task reappears at
// the head of the queue for someone else — the removeMin's inverse puts it
// back.
//
// Run: go run ./examples/scheduler
package main

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"tboost"
)

type task struct {
	id       int64
	deadline int64
}

const (
	producers     = 2
	tasksPerProd  = 100
	workers       = 4
	statusPending = 1
	statusDone    = 2
)

func main() {
	queue := tboost.NewHeap[task](tboost.RWLocked)
	ids := tboost.NewUniqueID()
	status := tboost.NewRBTreeMap[int]()

	var wg sync.WaitGroup
	// Producers submit tasks: stamping the ID, enqueueing, and recording
	// status is one atomic step.
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(p), 11))
			for i := 0; i < tasksPerProd; i++ {
				deadline := int64(r.IntN(10_000))
				tboost.MustAtomic(func(tx *tboost.Tx) error {
					id := ids.AssignID(tx)
					queue.Add(tx, deadline, task{id: id, deadline: deadline})
					status.Put(tx, id, statusPending)
					return nil
				})
			}
		}()
	}

	// Workers claim tasks. A simulated transient failure aborts the claim,
	// which atomically returns the task to the queue.
	total := producers * tasksPerProd
	var processed sync.Map
	var claimed int64
	var mu sync.Mutex
	flake := errors.New("worker hiccup")
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 13))
			for {
				mu.Lock()
				if claimed >= int64(total) {
					mu.Unlock()
					return
				}
				mu.Unlock()
				var got *task
				err := tboost.Atomic(func(tx *tboost.Tx) error {
					got = nil
					_, t, ok := queue.RemoveMin(tx)
					if !ok {
						return nil // queue momentarily empty
					}
					if r.IntN(10) == 0 {
						return flake // abort: task goes back
					}
					status.Put(tx, t.id, statusDone)
					got = &t
					return nil
				})
				if errors.Is(err, flake) {
					continue
				}
				if got != nil {
					if _, dup := processed.LoadOrStore(got.id, true); dup {
						fmt.Printf("TASK %d PROCESSED TWICE\n", got.id)
						return
					}
					mu.Lock()
					claimed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Verify: every task done exactly once, none pending.
	done := 0
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		done = 0
		for id := int64(1); id <= int64(total); id++ {
			if s, ok := status.Get(tx, id); ok && s == statusDone {
				done++
			}
		}
		return nil
	})
	fmt.Printf("scheduled %d tasks across %d workers; %d completed exactly once\n",
		total, workers, done)
	// Output:
	// scheduled 200 tasks across 4 workers; 200 completed exactly once
}
