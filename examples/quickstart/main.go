// Quickstart: a boosted transactional set in ten lines, plus a look at what
// happens on abort.
//
// Run: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"

	"tboost"
)

func main() {
	set := tboost.NewSkipListSet()

	// A transaction that commits: both inserts become visible atomically.
	err := tboost.Atomic(func(tx *tboost.Tx) error {
		set.Add(tx, 2)
		set.Add(tx, 4)
		return nil
	})
	fmt.Println("commit err:", err)

	// A transaction that aborts: the runtime replays inverse operations
	// (remove(6), re-add(2)) in reverse order, so nothing leaks.
	failed := errors.New("changed my mind")
	err = tboost.Atomic(func(tx *tboost.Tx) error {
		set.Add(tx, 6)    // inverse: remove(6)
		set.Remove(tx, 2) // inverse: add(2)
		return failed
	})
	fmt.Println("abort err:", err)

	// Observe the final state transactionally.
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		for _, k := range []int64{2, 4, 6} {
			fmt.Printf("contains(%d) = %v\n", k, set.Contains(tx, k))
		}
		return nil
	})
	// Output:
	// commit err: <nil>
	// abort err: changed my mind
	// contains(2) = true
	// contains(4) = true
	// contains(6) = false
}
