// Reservation: closed nested transactions over boosted objects.
//
// A trip booking reserves one seat on a flight and one room at a hotel,
// atomically. Hotels are tried one at a time inside *nested* transactions:
// when a hotel is full, only the hotel part rolls back and the parent
// transaction tries the next hotel — the flight reservation made earlier in
// the same transaction survives. If no hotel works, the whole transaction
// aborts and the flight seat is released by its logged inverse.
//
// Run: go run ./examples/reservation
package main

import (
	"errors"
	"fmt"
	"sync"

	"tboost"
)

var errFull = errors.New("no capacity")

// inventory is a boosted map from resource id to remaining capacity.
type inventory struct {
	m *tboost.Map[int64]
}

func newInventory(capacities map[int64]int64) *inventory {
	inv := &inventory{m: tboost.NewRBTreeMap[int64]()}
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		for id, c := range capacities {
			inv.m.Put(tx, id, c)
		}
		return nil
	})
	return inv
}

// reserve takes one unit of the resource or fails the (sub)transaction.
func (inv *inventory) reserve(tx *tboost.Tx, id int64) error {
	c, _ := inv.m.Get(tx, id)
	if c == 0 {
		return errFull
	}
	inv.m.Put(tx, id, c-1)
	return nil
}

func (inv *inventory) remaining(id int64) int64 {
	var v int64
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		v, _ = inv.m.Get(tx, id)
		return nil
	})
	return v
}

const (
	flightA int64 = 1
	hotelX  int64 = 100
	hotelY  int64 = 101
	hotelZ  int64 = 102
)

func main() {
	flights := newInventory(map[int64]int64{flightA: 30})
	hotels := newInventory(map[int64]int64{hotelX: 5, hotelY: 10, hotelZ: 20})
	hotelPref := []int64{hotelX, hotelY, hotelZ}

	booked := make(map[int64]int)
	var mu sync.Mutex
	var failed int

	var wg sync.WaitGroup
	for traveler := 0; traveler < 40; traveler++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := tboost.Atomic(func(tx *tboost.Tx) error {
				// Reserve the flight first; its inverse (seat back)
				// is logged automatically via the boosted map.
				if err := flights.reserve(tx, flightA); err != nil {
					return err
				}
				// Try hotels in preference order, each in a nested
				// transaction: a full hotel rolls back only itself.
				for _, h := range hotelPref {
					h := h
					err := tx.Nested(func(tx *tboost.Tx) error {
						return hotels.reserve(tx, h)
					})
					if err == nil {
						mu.Lock()
						booked[h]++
						mu.Unlock()
						return nil // flight + this hotel commit together
					}
				}
				return errFull // aborts: flight seat restored
			})
			if err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, h := range hotelPref {
		total += booked[h]
	}
	fmt.Printf("booked %d trips (X=%d Y=%d Z=%d), %d travelers unserved\n",
		total, booked[hotelX], booked[hotelY], booked[hotelZ], failed)
	fmt.Printf("flight seats left: %d (started 30)\n", flights.remaining(flightA))
	fmt.Printf("hotel rooms left:  X=%d Y=%d Z=%d (started 5/10/20)\n",
		hotels.remaining(hotelX), hotels.remaining(hotelY), hotels.remaining(hotelZ))

	// Conservation: flight seats used must equal trips booked, and no
	// hotel may be oversold.
	if int64(total) != 30-flights.remaining(flightA) {
		fmt.Println("INCONSISTENT: flight seats do not match bookings")
	}
}
