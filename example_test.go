package tboost_test

import (
	"errors"
	"fmt"
	"os"

	"tboost"
)

// The simplest boosted object: a transactional set over a lock-free skip
// list. Everything inside Atomic commits or rolls back together.
func Example() {
	set := tboost.NewSkipListSet()
	_ = tboost.Atomic(func(tx *tboost.Tx) error {
		set.Add(tx, 2)
		set.Add(tx, 4)
		return nil
	})
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fmt.Println(set.Contains(tx, 2), set.Contains(tx, 3))
		return nil
	})
	// Output: true false
}

// Aborting a transaction runs the logged inverse operations in reverse, so
// the set is exactly as before.
func ExampleAtomic_abort() {
	set := tboost.NewSkipListSet()
	errNo := errors.New("changed my mind")
	err := tboost.Atomic(func(tx *tboost.Tx) error {
		set.Add(tx, 99)
		return errNo
	})
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fmt.Println(err == errNo, set.Contains(tx, 99))
		return nil
	})
	// Output: true false
}

// A nested transaction rolls back alone, leaving the parent's work intact.
func ExampleTx_Nested() {
	set := tboost.NewSkipListSet()
	errChild := errors.New("child failed")
	_ = tboost.Atomic(func(tx *tboost.Tx) error {
		set.Add(tx, 1) // parent's work
		_ = tx.Nested(func(tx *tboost.Tx) error {
			set.Add(tx, 2)  // rolled back
			return errChild // only the child aborts
		})
		return nil // parent commits
	})
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fmt.Println(set.Contains(tx, 1), set.Contains(tx, 2))
		return nil
	})
	// Output: true false
}

// Parallel runs branches concurrently inside one transaction: abstract
// locks synchronize against other transactions, the base object
// synchronizes the branches.
func ExampleTx_Parallel() {
	set := tboost.NewSkipListSet()
	_ = tboost.Atomic(func(tx *tboost.Tx) error {
		return tx.Parallel(
			func(tx *tboost.Tx) error { set.Add(tx, 1); return nil },
			func(tx *tboost.Tx) error { set.Add(tx, 2); return nil },
		)
	})
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fmt.Println(set.Contains(tx, 1), set.Contains(tx, 2))
		return nil
	})
	// Output: true true
}

// The kernel's key space is generic: the same boosting spec serves a
// string-keyed set, with per-tag abstract locks and inverse logging working
// exactly as they do for integer keys.
func ExampleNewHashSetOf() {
	tags := tboost.NewHashSetOf[string]()
	_ = tboost.Atomic(func(tx *tboost.Tx) error {
		tags.Add(tx, "urgent")
		tags.Add(tx, "backend")
		return nil
	})
	failed := errors.New("validation failed")
	_ = tboost.Atomic(func(tx *tboost.Tx) error {
		tags.Add(tx, "frontend")  // rolled back
		tags.Remove(tx, "urgent") // rolled back
		return failed
	})
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fmt.Println(tags.Contains(tx, "urgent"), tags.Contains(tx, "frontend"))
		return nil
	})
	// Output: true false
}

// A transactional semaphore: the release is disposable — it takes effect
// only when the transaction commits.
func ExampleSemaphore() {
	sem := tboost.NewSemaphore(0)
	_ = tboost.Atomic(func(tx *tboost.Tx) error {
		sem.Release(tx)
		fmt.Println("during tx:", sem.Value())
		return nil
	})
	fmt.Println("after commit:", sem.Value())
	// Output:
	// during tx: 0
	// after commit: 1
}

// Durable boosting: bind objects to a write-ahead log, recover, and run
// transactions whose commits are held until a group fsync covers them. A
// reopened log replays the committed forward ops, rebuilding the sets.
func ExampleOpenWAL() {
	dir, _ := os.MkdirTemp("", "tboost-example-*")
	defer os.RemoveAll(dir)

	open := func() (*tboost.WAL, *tboost.SetOf[string]) {
		log, err := tboost.OpenWAL(tboost.WALOptions{Mode: tboost.WALGroup, Dir: dir})
		if err != nil {
			panic(err)
		}
		users := tboost.NewHashSetOf[string]()
		if err := tboost.BindSet(log, "users", tboost.StringCodec, users); err != nil {
			panic(err)
		}
		if _, err := log.Recover(); err != nil {
			panic(err)
		}
		return log, users
	}

	log, users := open()
	sys := tboost.NewSystem(tboost.Config{Durability: log})
	err := sys.Atomic(func(tx *tboost.Tx) error {
		users.Add(tx, "ada")
		users.Add(tx, "alan")
		return nil
	})
	// err == nil means the transaction is on disk, not just in memory; a
	// failed fsync surfaces as an error wrapping tboost.ErrNotDurable.
	fmt.Println("durable:", err == nil)
	log.Close()

	log2, users2 := open() // simulate a restart: replay rebuilds the set
	defer log2.Close()
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		fmt.Println("recovered:", users2.Contains(tx, "ada"), users2.Contains(tx, "alan"))
		return nil
	})
	// Output:
	// durable: true
	// recovered: true true
}
