module tboost

go 1.24
