package tboost_test

import (
	"errors"
	"testing"
	"time"

	"tboost"
)

// TestFacadeConstructors exercises every public constructor end to end
// through the facade, so the public API surface is known to be wired.
func TestFacadeConstructors(t *testing.T) {
	sets := map[string]*tboost.Set{
		"skiplist":        tboost.NewSkipListSet(),
		"skiplist-coarse": tboost.NewSkipListSetCoarse(),
		"rbtree":          tboost.NewRBTreeSet(),
		"hashset":         tboost.NewHashSet(),
		"linkedlist":      tboost.NewLinkedListSet(),
	}
	for name, s := range sets {
		s := s
		if err := tboost.Atomic(func(tx *tboost.Tx) error {
			if !s.Add(tx, 1) || !s.Contains(tx, 1) || !s.Remove(tx, 1) {
				t.Errorf("%s: basic ops failed", name)
			}
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	m := tboost.NewRBTreeMap[string]()
	h := tboost.NewHeap[string](tboost.RWLocked)
	he := tboost.NewHeap[string](tboost.Exclusive)
	q := tboost.NewQueue[string](4)
	sem := tboost.NewSemaphore(1)
	uid := tboost.NewUniqueID()
	rc := tboost.NewRefCount(1, nil)
	pool := tboost.NewPool(func() int { return 1 })
	bag := tboost.NewMultiset()
	ctr := tboost.NewCounter(0)

	if err := tboost.Atomic(func(tx *tboost.Tx) error {
		m.Put(tx, 1, "one")
		if v, ok := m.Get(tx, 1); !ok || v != "one" {
			t.Error("map broken")
		}
		h.Add(tx, 5, "five")
		he.Add(tx, 5, "five")
		if k, v, ok := h.Min(tx); !ok || k != 5 || v != "five" {
			t.Error("heap broken")
		}
		q.Offer(tx, "item")
		sem.Acquire(tx)
		sem.Release(tx)
		if uid.AssignID(tx) == 0 {
			t.Error("uid broken")
		}
		rc.Inc(tx)
		rc.Dec(tx)
		v := pool.Alloc(tx)
		pool.Free(tx, v)
		bag.Add(tx, 3)
		ctr.Add(tx, 10)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sem.Value() != 1 {
		t.Errorf("semaphore = %d", sem.Value())
	}
	if rc.Value() != 1 {
		t.Errorf("refcount = %d", rc.Value())
	}
	if ctr.ValueQuiescent() != 10 {
		t.Errorf("counter = %d", ctr.ValueQuiescent())
	}
	if bag.Base().Count(3) != 1 {
		t.Errorf("multiset count = %d", bag.Base().Count(3))
	}
}

func TestFacadeCustomBaseAndSystem(t *testing.T) {
	sys := tboost.NewSystem(tboost.Config{LockTimeout: 20 * time.Millisecond, MaxRetries: 5})
	s := tboost.NewCoarseSet(fakeBase{})
	if err := sys.Atomic(func(tx *tboost.Tx) error {
		if !s.Add(tx, 9) {
			t.Error("custom base Add failed")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	keyed := tboost.NewKeyedSet(fakeBase{})
	tboost.MustAtomic(func(tx *tboost.Tx) error {
		keyed.Add(tx, 1)
		return nil
	})
}

// fakeBase is a trivial linearizable set (always empty semantics) proving
// the black-box contract: any BaseSet can be boosted.
type fakeBase struct{}

func (fakeBase) Add(key int64) bool      { return true }
func (fakeBase) Remove(key int64) bool   { return false }
func (fakeBase) Contains(key int64) bool { return false }

func TestFacadeErrorsExported(t *testing.T) {
	sys := tboost.NewSystem(tboost.Config{MaxRetries: 1})
	err := sys.Atomic(func(tx *tboost.Tx) error {
		tx.Abort(nil)
		return nil
	})
	if !errors.Is(err, tboost.ErrTooManyRetries) {
		t.Fatalf("err = %v", err)
	}
	if tboost.ErrAborted == nil {
		t.Fatal("ErrAborted not exported")
	}
}

// TestFacadeTwoPhaseCommit drives a volatile cross-System span and a
// read-only span through the facade exports.
func TestFacadeTwoPhaseCommit(t *testing.T) {
	a, b := tboost.NewSystem(tboost.Config{}), tboost.NewSystem(tboost.Config{})
	sa, sb := tboost.NewHashSetOf[int64](), tboost.NewHashSetOf[int64]()
	coord, err := tboost.NewCoordinator(
		[]tboost.Participant{{Sys: a}, {Sys: b}},
		tboost.CoordinatorOptions{PrepareTimeout: time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Span(
		func(tx *tboost.Tx, _ uint64) error { sa.Add(tx, 1); return nil },
		func(tx *tboost.Tx, _ uint64) error { sb.Add(tx, 2); return nil },
	); err != nil {
		t.Fatal(err)
	}
	span := coord.ReadOnlySpan()
	defer span.Close()
	var on0, on1 bool
	if err := span.Atomic(0, func(tx *tboost.Tx) error { on0 = sa.Contains(tx, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := span.Atomic(1, func(tx *tboost.Tx) error { on1 = sb.Contains(tx, 2); return nil }); err != nil {
		t.Fatal(err)
	}
	if !on0 || !on1 {
		t.Fatalf("read-only span missed span effects: %v %v", on0, on1)
	}
	if tboost.ErrBackpressure == nil || tboost.ErrNoPreparedSink == nil || tboost.ErrCoordinatorCrashed == nil {
		t.Fatal("2pc sentinels not exported")
	}
}
